// Package radio simulates the physical link layer: the lifecycle of
// point-to-point E band links between transceivers on moving
// platforms. It is the "truth" the TS-SDN's models approximate — the
// gap between what the Link Evaluator predicts and what this fabric
// measures is the modelled-vs-measured error of Fig. 10, and the
// lifetime statistics it produces are Fig. 11.
package radio

import (
	"fmt"

	"minkowski/internal/platform"
	"minkowski/internal/rf"
)

// LinkID canonically identifies a link by its two transceiver IDs
// (lexicographically ordered so A→B and B→A are the same link).
type LinkID struct {
	A, B string
}

// MakeLinkID builds the canonical ID for a transceiver pair.
func MakeLinkID(a, b string) LinkID {
	if b < a {
		a, b = b, a
	}
	return LinkID{A: a, B: b}
}

// String implements fmt.Stringer.
func (id LinkID) String() string { return id.A + "<->" + id.B }

// State is a link's lifecycle position.
type State int

const (
	// StateSlewing: antennas are rotating toward each other.
	StateSlewing State = iota
	// StateAcquiring: endpoints are searching for each other's beam.
	StateAcquiring
	// StateUp: the link is carrying traffic.
	StateUp
	// StateDown: terminal; the link object is retired.
	StateDown
)

// String implements fmt.Stringer.
func (s State) String() string {
	switch s {
	case StateSlewing:
		return "slewing"
	case StateAcquiring:
		return "acquiring"
	case StateUp:
		return "up"
	default:
		return "down"
	}
}

// Reason explains a link termination. The distinction between
// ReasonWithdrawn (the controller asked) and everything else (the
// physics decided) is the paper's planned-vs-unexpected split that
// drives Fig. 8's recovery comparison.
type Reason int

const (
	// ReasonNone: still alive.
	ReasonNone Reason = iota
	// ReasonWithdrawn: graceful, controller-initiated teardown.
	ReasonWithdrawn
	// ReasonAcquireFailed: the endpoints never found each other.
	ReasonAcquireFailed
	// ReasonRFFade: signal faded below the drop threshold (weather,
	// range growth).
	ReasonRFFade
	// ReasonGeometry: pointing left a field of regard, hit an
	// occlusion, or lost line of sight.
	ReasonGeometry
	// ReasonPowerLoss: an endpoint's payload lost power.
	ReasonPowerLoss
)

// String implements fmt.Stringer.
func (r Reason) String() string {
	switch r {
	case ReasonWithdrawn:
		return "withdrawn"
	case ReasonAcquireFailed:
		return "acquire-failed"
	case ReasonRFFade:
		return "rf-fade"
	case ReasonGeometry:
		return "geometry"
	case ReasonPowerLoss:
		return "power-loss"
	default:
		return "none"
	}
}

// Unexpected reports whether the termination was unplanned (anything
// except a controller withdrawal).
func (r Reason) Unexpected() bool {
	return r != ReasonWithdrawn && r != ReasonNone
}

// Link is one point-to-point radio link instance (one attempt; a
// retry is a new Link).
type Link struct {
	ID LinkID
	XA *platform.Transceiver
	XB *platform.Transceiver
	// Channel both ends are tuned to.
	Channel rf.Channel
	// State machine position.
	State State
	// EndReason is set when State == StateDown.
	EndReason Reason
	// Times (sim seconds): when establishment was commanded, when the
	// link came up (0 if never), when it ended.
	CommandedAt   float64
	EstablishedAt float64
	EndedAt       float64
	// Measured is the latest link budget measured by the radios
	// (includes tracking noise and side-lobe effects).
	Measured rf.Budget
	// SideLobe marks a tracker locked onto the first side lobe — the
	// paper's "visible bump around −14 dB" in Fig. 10.
	SideLobe bool
	// Unstable marks a ground-terminated link that drew the unstable
	// scintillation regime at establishment (it will likely die
	// within minutes).
	Unstable bool
	// Attempt is 1 for the first try, incremented on retries of the
	// same pair by the intent layer.
	Attempt int

	// belowMarginChecks counts consecutive fade checks for hysteresis.
	belowMarginChecks int
}

// IsB2G reports whether the link has a ground endpoint.
func (l *Link) IsB2G() bool {
	return l.XA.Node.Kind == platform.KindGround || l.XB.Node.Kind == platform.KindGround
}

// Up reports whether the link is carrying traffic.
func (l *Link) Up() bool { return l.State == StateUp }

// Lifetime returns the installed duration in seconds (0 if the link
// never came up or is still up).
func (l *Link) Lifetime() float64 {
	if l.EstablishedAt == 0 || l.EndedAt == 0 {
		return 0
	}
	return l.EndedAt - l.EstablishedAt
}

// Nodes returns the two endpoint node IDs.
func (l *Link) Nodes() (string, string) {
	return l.XA.Node.ID, l.XB.Node.ID
}

// String implements fmt.Stringer.
func (l *Link) String() string {
	return fmt.Sprintf("link %s [%s]", l.ID, l.State)
}
