package geo

import "math"

// CellIndex buckets positions into a uniform grid of cubic cells in
// the ECEF frame, sized so that any two positions within the cell
// edge length are guaranteed to land in the same or an adjacent cell
// along every axis. The Link Evaluator uses it to enumerate only
// transceiver pairs within plausible link range (Config.MaxRangeM)
// instead of sweeping all N² pairs: for a query point, scanning the
// 3×3×3 neighborhood of its cell yields a superset of every indexed
// point within one cell edge of it, and nothing farther than
// 2·√3 edges.
//
// The index is rebuilt each evaluation epoch (positions move every
// tick); Reset reuses the allocated buckets so steady-state rebuilds
// are allocation-free.
type CellIndex struct {
	cellM float64
	cells map[cellKey][]int32
	n     int
}

type cellKey struct{ x, y, z int32 }

// NewCellIndex creates an index with the given cell edge length in
// meters (typically the evaluator's MaxRangeM).
func NewCellIndex(cellM float64) *CellIndex {
	ci := &CellIndex{cells: make(map[cellKey][]int32)}
	ci.Reset(cellM)
	return ci
}

// Reset empties the index and sets the cell edge length, retaining
// bucket capacity so steady-state rebuilds don't allocate.
func (ci *CellIndex) Reset(cellM float64) {
	if cellM <= 0 {
		cellM = 1
	}
	ci.cellM = cellM
	ci.n = 0
	for k, v := range ci.cells {
		ci.cells[k] = v[:0]
	}
}

// Len returns the number of indexed points.
func (ci *CellIndex) Len() int { return ci.n }

//minkowski:hotpath
func (ci *CellIndex) key(p Vec3) cellKey {
	return cellKey{
		x: int32(floorDiv(p.X, ci.cellM)),
		y: int32(floorDiv(p.Y, ci.cellM)),
		z: int32(floorDiv(p.Z, ci.cellM)),
	}
}

func floorDiv(v, cell float64) float64 {
	return math.Floor(v / cell)
}

// Insert adds an id at an ECEF position.
//
//minkowski:hotpath
func (ci *CellIndex) Insert(id int32, p Vec3) {
	k := ci.key(p)
	ci.cells[k] = append(ci.cells[k], id)
	ci.n++
}

// Near calls visit for every indexed id whose position may lie within
// one cell edge of p (the 27-cell neighborhood). Visits are
// deterministic: neighbor cells are scanned in a fixed order and ids
// within a cell in insertion order. Callers must apply their own
// exact distance gate — the neighborhood is a superset.
//
//minkowski:hotpath
func (ci *CellIndex) Near(p Vec3, visit func(id int32)) {
	c := ci.key(p)
	for dx := int32(-1); dx <= 1; dx++ {
		for dy := int32(-1); dy <= 1; dy++ {
			for dz := int32(-1); dz <= 1; dz++ {
				ids := ci.cells[cellKey{c.x + dx, c.y + dy, c.z + dz}]
				for _, id := range ids {
					visit(id)
				}
			}
		}
	}
}
