package geo

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestECEFKnownPoints(t *testing.T) {
	cases := []struct {
		name string
		p    LLA
		want Vec3
		tol  float64
	}{
		{"equator-prime", LLADeg(0, 0, 0), Vec3{EarthSemiMajor, 0, 0}, 1e-6},
		{"north-pole", LLADeg(90, 0, 0), Vec3{0, 0, EarthSemiMinor}, 1e-6},
		{"south-pole", LLADeg(-90, 0, 0), Vec3{0, 0, -EarthSemiMinor}, 1e-6},
		{"equator-90E", LLADeg(0, 90, 0), Vec3{0, EarthSemiMajor, 0}, 1e-6},
		{"equator-alt", LLADeg(0, 0, 1000), Vec3{EarthSemiMajor + 1000, 0, 0}, 1e-6},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			got := c.p.ToECEF()
			if !almostEq(got.X, c.want.X, c.tol) || !almostEq(got.Y, c.want.Y, c.tol) || !almostEq(got.Z, c.want.Z, c.tol) {
				t.Errorf("ToECEF(%v) = %+v, want %+v", c.p, got, c.want)
			}
		})
	}
}

func TestECEFRoundTrip(t *testing.T) {
	f := func(latDeg, lonDeg, altKm float64) bool {
		lat := math.Mod(math.Abs(latDeg), 89)
		if latDeg < 0 {
			lat = -lat
		}
		lon := math.Mod(lonDeg, 179.9)
		alt := math.Mod(math.Abs(altKm), 40) * 1000
		p := LLADeg(lat, lon, alt)
		back := p.ToECEF().ToLLA()
		return almostEq(back.Lat, p.Lat, 1e-9) &&
			almostEq(back.Lon, p.Lon, 1e-9) &&
			almostEq(back.Alt, p.Alt, 1e-3)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestSlantRangeSymmetric(t *testing.T) {
	a := LLADeg(-1.0, 37.0, 18000)
	b := LLADeg(-1.5, 38.0, 17000)
	if d1, d2 := SlantRange(a, b), SlantRange(b, a); !almostEq(d1, d2, 1e-6) {
		t.Errorf("slant range asymmetric: %v vs %v", d1, d2)
	}
}

func TestSlantRangeVsGreatCircle(t *testing.T) {
	// Over short distances at equal altitude, slant range and
	// great-circle distance should be close (chord vs arc).
	a := LLADeg(0, 37, 0)
	b := LLADeg(0, 37.9, 0) // ~100 km
	sr := SlantRange(a, b)
	gc := GreatCircle(a, b)
	// Chord vs arc plus mean-radius-vs-equatorial-radius effects: they
	// should agree to a few hundred meters over ~100 km.
	if math.Abs(sr-gc) > 300 {
		t.Errorf("slant %v vs great-circle %v differ by more than 300 m over ~100 km", sr, gc)
	}
	if gc < 99e3 || gc > 101e3 {
		t.Errorf("great-circle distance = %v, want ~100 km", gc)
	}
}

func TestPointingStraightUp(t *testing.T) {
	ground := LLADeg(-1, 37, 0)
	above := LLADeg(-1, 37, 18000)
	pt := PointingTo(ground, above)
	if !almostEq(pt.Elevation, math.Pi/2, 0.01) {
		t.Errorf("elevation to point overhead = %v rad, want ~π/2", pt.Elevation)
	}
	if !almostEq(pt.Range, 18000, 50) {
		t.Errorf("range = %v, want ~18000", pt.Range)
	}
}

func TestPointingCardinal(t *testing.T) {
	origin := LLADeg(0, 37, 18000)
	cases := []struct {
		name   string
		target LLA
		wantAz float64 // degrees
	}{
		{"north", LLADeg(1, 37, 18000), 0},
		{"east", LLADeg(0, 38, 18000), 90},
		{"south", LLADeg(-1, 37, 18000), 180},
		{"west", LLADeg(0, 36, 18000), 270},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			pt := PointingTo(origin, c.target)
			if AngleDiff(pt.Azimuth, Deg(c.wantAz)) > Deg(1.0) {
				t.Errorf("azimuth = %v°, want %v°", ToDeg(pt.Azimuth), c.wantAz)
			}
			// Equal-altitude targets ~111 km away dip slightly below
			// horizontal due to Earth curvature.
			if pt.Elevation > 0 || pt.Elevation < Deg(-2) {
				t.Errorf("elevation = %v°, want slightly negative", ToDeg(pt.Elevation))
			}
		})
	}
}

func TestPointingReciprocal(t *testing.T) {
	// Pointing a→b and b→a should have azimuths roughly opposite.
	a := LLADeg(-1.0, 37.0, 18000)
	b := LLADeg(-1.3, 37.8, 16000)
	ab := PointingTo(a, b)
	ba := PointingTo(b, a)
	if AngleDiff(ab.Azimuth, ba.Azimuth+math.Pi) > Deg(2) {
		t.Errorf("azimuths not reciprocal: %v vs %v", ToDeg(ab.Azimuth), ToDeg(ba.Azimuth))
	}
	if !almostEq(ab.Range, ba.Range, 1e-6) {
		t.Errorf("ranges differ: %v vs %v", ab.Range, ba.Range)
	}
}

func TestLineOfSightStratosphere(t *testing.T) {
	// Two balloons at 18 km, 500 km apart: LOS should clear the Earth.
	a := LLADeg(0, 35, 18000)
	b := Offset(a, Deg(90), 500e3)
	b.Alt = 18000
	if !LineOfSight(a, b, 0) {
		t.Error("500 km B2B at 18 km should have line of sight")
	}
	// Two balloons 1200 km apart at 18 km should NOT clear the Earth:
	// the horizon distance at 18 km is ~479 km, so two balloons can see
	// each other out to ~958 km.
	c := Offset(a, Deg(90), 1200e3)
	c.Alt = 18000
	if LineOfSight(a, c, 0) {
		t.Error("1200 km B2B at 18 km should be blocked by the Earth")
	}
}

func TestLineOfSightGround(t *testing.T) {
	// Ground station to balloon at 150 km ground distance, 18 km up.
	gs := LLADeg(-1, 37, 1600)
	bln := Offset(gs, 0, 150e3)
	bln.Alt = 18000
	if !LineOfSight(gs, bln, 0) {
		t.Error("GS to balloon at 150 km should have line of sight")
	}
}

func TestGrazingAltitudeEndpointCases(t *testing.T) {
	a := LLADeg(0, 0, 10000)
	b := LLADeg(0, 0.1, 20000)
	g := GrazingAltitude(a, b)
	// Closest approach to Earth's center is at or before the lower
	// endpoint, so the grazing altitude is the lower endpoint's height
	// above the mean-radius sphere (the ellipsoid bulges above the
	// sphere at the equator, so this exceeds the geodetic altitude).
	want := a.ToECEF().Norm() - EarthMeanRadius
	if !almostEq(g, want, 1.0) {
		t.Errorf("grazing altitude = %v, want %v", g, want)
	}
}

func TestOffsetDistance(t *testing.T) {
	f := func(bearingDeg, distKm float64) bool {
		start := LLADeg(-1, 37, 18000)
		d := math.Mod(math.Abs(distKm), 700) * 1000
		br := Deg(math.Mod(math.Abs(bearingDeg), 360))
		end := Offset(start, br, d)
		got := GreatCircle(start, end)
		return math.Abs(got-d) < d*0.01+1.0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestOffsetLongitudeWrap(t *testing.T) {
	p := LLADeg(0, 179.5, 0)
	q := Offset(p, Deg(90), 200e3)
	if q.Lon > math.Pi || q.Lon <= -math.Pi {
		t.Errorf("longitude not normalized: %v", q.Lon)
	}
	if ToDeg(q.Lon) > -177 && ToDeg(q.Lon) < 177 {
		t.Errorf("crossing the antimeridian should land near ±180°, got %v°", ToDeg(q.Lon))
	}
}

func TestENURoundTrip(t *testing.T) {
	f := NewENU(LLADeg(-1, 37, 18000))
	p := LLADeg(-1.2, 37.4, 17000).ToECEF()
	local := f.To(p)
	back := f.From(local)
	if back.Sub(p).Norm() > 1e-6 {
		t.Errorf("ENU round trip error: %v", back.Sub(p).Norm())
	}
}

func TestSampleSegment(t *testing.T) {
	a := LLADeg(-1, 37, 1600)
	b := LLADeg(-1.5, 38, 18000)
	samples := SampleSegment(a, b, 10)
	if len(samples) != 11 {
		t.Fatalf("len(samples) = %d, want 11", len(samples))
	}
	if SlantRange(samples[0], a) > 1 {
		t.Error("first sample should be the start point")
	}
	if SlantRange(samples[10], b) > 1 {
		t.Error("last sample should be the end point")
	}
	// Altitude should increase monotonically along the segment.
	for i := 1; i < len(samples); i++ {
		if samples[i].Alt < samples[i-1].Alt-200 {
			t.Errorf("altitude not roughly monotone at %d: %v -> %v", i, samples[i-1].Alt, samples[i].Alt)
		}
	}
}

func TestWrapAngle(t *testing.T) {
	cases := []struct{ in, want float64 }{
		{0, 0},
		{2 * math.Pi, 0},
		{-math.Pi / 2, 3 * math.Pi / 2},
		{5 * math.Pi, math.Pi},
	}
	for _, c := range cases {
		if got := WrapAngle(c.in); !almostEq(got, c.want, 1e-12) {
			t.Errorf("WrapAngle(%v) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestAngleDiff(t *testing.T) {
	cases := []struct{ a, b, want float64 }{
		{0, 0, 0},
		{0, math.Pi, math.Pi},
		{0.1, 2*math.Pi - 0.1, 0.2},
		{3, -3, 2*math.Pi - 6},
	}
	for _, c := range cases {
		if got := AngleDiff(c.a, c.b); !almostEq(got, c.want, 1e-9) {
			t.Errorf("AngleDiff(%v,%v) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestAngleDiffProperty(t *testing.T) {
	f := func(a, b float64) bool {
		// Constrain to a physically meaningful angle range: Mod on
		// astronomically large floats has no angular meaning.
		a = math.Mod(a, 100)
		b = math.Mod(b, 100)
		d := AngleDiff(a, b)
		return d >= 0 && d <= math.Pi+1e-9 && almostEq(d, AngleDiff(b, a), 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestInitialBearing(t *testing.T) {
	a := LLADeg(0, 37, 0)
	if br := InitialBearing(a, LLADeg(1, 37, 0)); AngleDiff(br, 0) > Deg(0.5) {
		t.Errorf("bearing due north = %v°", ToDeg(br))
	}
	if br := InitialBearing(a, LLADeg(0, 38, 0)); AngleDiff(br, Deg(90)) > Deg(0.5) {
		t.Errorf("bearing due east = %v°", ToDeg(br))
	}
}

func BenchmarkToECEF(b *testing.B) {
	p := LLADeg(-1.2, 37.4, 18000)
	for i := 0; i < b.N; i++ {
		_ = p.ToECEF()
	}
}

func BenchmarkPointingTo(b *testing.B) {
	a := LLADeg(-1.0, 37.0, 18000)
	c := LLADeg(-1.3, 37.8, 16000)
	for i := 0; i < b.N; i++ {
		_ = PointingTo(a, c)
	}
}

func BenchmarkGrazingAltitude(b *testing.B) {
	a := LLADeg(-1.0, 37.0, 18000)
	c := LLADeg(-3.0, 40.0, 18000)
	for i := 0; i < b.N; i++ {
		_ = GrazingAltitude(a, c)
	}
}
