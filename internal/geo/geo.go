// Package geo provides the geodetic and 3-D geometric primitives the
// TS-SDN uses to reason about the physical world: WGS84 coordinates,
// Earth-centered Earth-fixed (ECEF) vectors, slant ranges, pointing
// angles (azimuth/elevation), and line-of-sight tests against the
// Earth's bulge.
//
// All distances are in meters, all angles in radians unless a name says
// otherwise. Latitude/longitude are geodetic (WGS84).
package geo

import (
	"fmt"
	"math"
)

// WGS84 ellipsoid constants.
const (
	// EarthSemiMajor is the WGS84 semi-major axis (equatorial radius).
	EarthSemiMajor = 6378137.0
	// EarthFlattening is the WGS84 flattening f = (a-b)/a.
	EarthFlattening = 1.0 / 298.257223563
	// EarthSemiMinor is the WGS84 semi-minor axis (polar radius).
	EarthSemiMinor = EarthSemiMajor * (1 - EarthFlattening)
	// EarthMeanRadius is the IUGG mean Earth radius, used for
	// great-circle approximations.
	EarthMeanRadius = 6371008.8
)

// eccSq is the first eccentricity squared of the WGS84 ellipsoid.
const eccSq = EarthFlattening * (2 - EarthFlattening)

// Deg converts degrees to radians.
func Deg(d float64) float64 { return d * math.Pi / 180 }

// ToDeg converts radians to degrees.
func ToDeg(r float64) float64 { return r * 180 / math.Pi }

// LLA is a geodetic position: latitude, longitude (radians) and
// altitude above the WGS84 ellipsoid (meters).
type LLA struct {
	Lat, Lon, Alt float64
}

// LLADeg constructs an LLA from degrees latitude/longitude and meters
// altitude.
func LLADeg(latDeg, lonDeg, alt float64) LLA {
	return LLA{Lat: Deg(latDeg), Lon: Deg(lonDeg), Alt: alt}
}

// String renders the position in degrees for human consumption.
func (p LLA) String() string {
	return fmt.Sprintf("(%.4f°, %.4f°, %.0fm)", ToDeg(p.Lat), ToDeg(p.Lon), p.Alt)
}

// Vec3 is a Cartesian vector in meters. The ECEF frame has +X through
// the prime meridian at the equator, +Z through the north pole.
type Vec3 struct {
	X, Y, Z float64
}

// Add returns v + w.
func (v Vec3) Add(w Vec3) Vec3 { return Vec3{v.X + w.X, v.Y + w.Y, v.Z + w.Z} }

// Sub returns v - w.
func (v Vec3) Sub(w Vec3) Vec3 { return Vec3{v.X - w.X, v.Y - w.Y, v.Z - w.Z} }

// Scale returns v scaled by s.
func (v Vec3) Scale(s float64) Vec3 { return Vec3{v.X * s, v.Y * s, v.Z * s} }

// Dot returns the dot product v · w.
func (v Vec3) Dot(w Vec3) float64 { return v.X*w.X + v.Y*w.Y + v.Z*w.Z }

// Cross returns the cross product v × w.
func (v Vec3) Cross(w Vec3) Vec3 {
	return Vec3{
		v.Y*w.Z - v.Z*w.Y,
		v.Z*w.X - v.X*w.Z,
		v.X*w.Y - v.Y*w.X,
	}
}

// Norm returns the Euclidean length of v.
func (v Vec3) Norm() float64 { return math.Sqrt(v.Dot(v)) }

// Unit returns v normalized to length 1. The zero vector is returned
// unchanged.
func (v Vec3) Unit() Vec3 {
	n := v.Norm()
	if n == 0 {
		return v
	}
	return v.Scale(1 / n)
}

// ToECEF converts a geodetic position to ECEF Cartesian coordinates.
//
//minkowski:hotpath
func (p LLA) ToECEF() Vec3 {
	sinLat, cosLat := math.Sincos(p.Lat)
	sinLon, cosLon := math.Sincos(p.Lon)
	// Prime vertical radius of curvature.
	n := EarthSemiMajor / math.Sqrt(1-eccSq*sinLat*sinLat)
	return Vec3{
		X: (n + p.Alt) * cosLat * cosLon,
		Y: (n + p.Alt) * cosLat * sinLon,
		Z: (n*(1-eccSq) + p.Alt) * sinLat,
	}
}

// ToLLA converts an ECEF vector back to geodetic coordinates using
// Bowring's iterative method (a handful of iterations converge to
// sub-millimeter accuracy for terrestrial and stratospheric altitudes).
func (v Vec3) ToLLA() LLA {
	lon := math.Atan2(v.Y, v.X)
	p := math.Hypot(v.X, v.Y)
	if p == 0 {
		// On the polar axis.
		lat := math.Pi / 2
		if v.Z < 0 {
			lat = -lat
		}
		return LLA{Lat: lat, Lon: 0, Alt: math.Abs(v.Z) - EarthSemiMinor}
	}
	lat := math.Atan2(v.Z, p*(1-eccSq))
	for i := 0; i < 8; i++ {
		sinLat := math.Sin(lat)
		n := EarthSemiMajor / math.Sqrt(1-eccSq*sinLat*sinLat)
		alt := p/math.Cos(lat) - n
		newLat := math.Atan2(v.Z, p*(1-eccSq*n/(n+alt)))
		if math.Abs(newLat-lat) < 1e-12 {
			lat = newLat
			break
		}
		lat = newLat
	}
	sinLat := math.Sin(lat)
	n := EarthSemiMajor / math.Sqrt(1-eccSq*sinLat*sinLat)
	alt := p/math.Cos(lat) - n
	return LLA{Lat: lat, Lon: lon, Alt: alt}
}

// SlantRange returns the straight-line (line-of-sight) distance in
// meters between two geodetic positions.
//
//minkowski:hotpath
func SlantRange(a, b LLA) float64 {
	return b.ToECEF().Sub(a.ToECEF()).Norm()
}

// GreatCircle returns the great-circle surface distance in meters
// between two positions (altitudes ignored), using the haversine
// formula on the mean Earth radius.
func GreatCircle(a, b LLA) float64 {
	dLat := b.Lat - a.Lat
	dLon := b.Lon - a.Lon
	s := math.Sin(dLat/2)*math.Sin(dLat/2) +
		math.Cos(a.Lat)*math.Cos(b.Lat)*math.Sin(dLon/2)*math.Sin(dLon/2)
	return 2 * EarthMeanRadius * math.Asin(math.Min(1, math.Sqrt(s)))
}

// InitialBearing returns the initial great-circle bearing from a to b
// in radians, in [0, 2π), measured clockwise from true north.
func InitialBearing(a, b LLA) float64 {
	dLon := b.Lon - a.Lon
	y := math.Sin(dLon) * math.Cos(b.Lat)
	x := math.Cos(a.Lat)*math.Sin(b.Lat) - math.Sin(a.Lat)*math.Cos(b.Lat)*math.Cos(dLon)
	br := math.Atan2(y, x)
	if br < 0 {
		br += 2 * math.Pi
	}
	return br
}

// Offset returns the position reached by traveling dist meters from p
// along the given initial bearing (radians from north), holding
// altitude. It uses the spherical direct geodesic problem, which is
// accurate to ~0.5% — ample for simulated balloon drift.
func Offset(p LLA, bearing, dist float64) LLA {
	ad := dist / EarthMeanRadius
	sinLat, cosLat := math.Sincos(p.Lat)
	sinAd, cosAd := math.Sincos(ad)
	sinBr, cosBr := math.Sincos(bearing)
	lat2 := math.Asin(sinLat*cosAd + cosLat*sinAd*cosBr)
	lon2 := p.Lon + math.Atan2(sinBr*sinAd*cosLat, cosAd-sinLat*math.Sin(lat2))
	// Normalize longitude to (-π, π].
	for lon2 > math.Pi {
		lon2 -= 2 * math.Pi
	}
	for lon2 <= -math.Pi {
		lon2 += 2 * math.Pi
	}
	return LLA{Lat: lat2, Lon: lon2, Alt: p.Alt}
}

// ENU is a local East-North-Up frame anchored at a reference position.
// The TS-SDN computes antenna pointing angles in the platform's local
// ENU frame.
type ENU struct {
	origin    Vec3
	east      Vec3
	north     Vec3
	up        Vec3
	originLLA LLA
}

// NewENU constructs a local tangent frame at the given position.
func NewENU(ref LLA) *ENU {
	sinLat, cosLat := math.Sincos(ref.Lat)
	sinLon, cosLon := math.Sincos(ref.Lon)
	return &ENU{
		origin:    ref.ToECEF(),
		east:      Vec3{-sinLon, cosLon, 0},
		north:     Vec3{-sinLat * cosLon, -sinLat * sinLon, cosLat},
		up:        Vec3{cosLat * cosLon, cosLat * sinLon, sinLat},
		originLLA: ref,
	}
}

// Origin returns the geodetic anchor of the frame.
func (f *ENU) Origin() LLA { return f.originLLA }

// To transforms an ECEF point into local ENU coordinates.
func (f *ENU) To(p Vec3) Vec3 {
	d := p.Sub(f.origin)
	return Vec3{d.Dot(f.east), d.Dot(f.north), d.Dot(f.up)}
}

// From transforms a local ENU point back into ECEF.
func (f *ENU) From(l Vec3) Vec3 {
	return f.origin.
		Add(f.east.Scale(l.X)).
		Add(f.north.Scale(l.Y)).
		Add(f.up.Scale(l.Z))
}

// Pointing is an antenna pointing direction expressed as azimuth
// (radians clockwise from north, in [0, 2π)) and elevation (radians
// above the local horizontal, in [-π/2, π/2]).
type Pointing struct {
	Azimuth   float64
	Elevation float64
	Range     float64 // slant range to the target, meters
}

// String renders the pointing in degrees.
func (pt Pointing) String() string {
	return fmt.Sprintf("az=%.1f° el=%.1f° r=%.1fkm",
		ToDeg(pt.Azimuth), ToDeg(pt.Elevation), pt.Range/1000)
}

// PointingTo computes the azimuth/elevation required to aim from
// position `from` at position `to`, in from's local ENU frame.
//
//minkowski:hotpath
func PointingTo(from, to LLA) Pointing {
	f := NewENU(from)
	l := f.To(to.ToECEF())
	r := l.Norm()
	az := math.Atan2(l.X, l.Y) // atan2(east, north): clockwise from north
	if az < 0 {
		az += 2 * math.Pi
	}
	el := 0.0
	if r > 0 {
		el = math.Asin(l.Z / r)
	}
	return Pointing{Azimuth: az, Elevation: el, Range: r}
}

// LineOfSight reports whether the straight segment between two
// positions clears the Earth (with the given clearance margin in
// meters added to the Earth radius, modelling terrain and atmospheric
// grazing losses). A clearance of 0 tests against the bare ellipsoid
// approximated as a sphere of the mean radius.
//
//minkowski:hotpath
func LineOfSight(a, b LLA, clearance float64) bool {
	return GrazingAltitude(a, b) >= clearance
}

// GrazingAltitude returns the minimum height above the (spherical)
// Earth surface reached by the straight segment between a and b, in
// meters. Negative values mean the segment intersects the Earth. For
// segments whose closest approach to the Earth's center lies outside
// the segment, the lower endpoint altitude is returned.
func GrazingAltitude(a, b LLA) float64 {
	pa := a.ToECEF()
	pb := b.ToECEF()
	d := pb.Sub(pa)
	dd := d.Dot(d)
	if dd == 0 {
		return pa.Norm() - EarthMeanRadius
	}
	// Parameter of closest approach of the infinite line to the origin.
	t := -pa.Dot(d) / dd
	if t <= 0 {
		return pa.Norm() - EarthMeanRadius
	}
	if t >= 1 {
		return pb.Norm() - EarthMeanRadius
	}
	closest := pa.Add(d.Scale(t))
	return closest.Norm() - EarthMeanRadius
}

// SampleSegment returns n+1 evenly spaced geodetic positions along the
// straight ECEF segment from a to b (inclusive of both endpoints). The
// weather substrate integrates attenuation along these samples.
func SampleSegment(a, b LLA, n int) []LLA {
	return SampleSegmentInto(nil, a, b, n)
}

// SampleSegmentInto is SampleSegment writing into dst's backing array
// when it has the capacity, so hot paths (the Link Evaluator samples
// every candidate path every epoch) can reuse one scratch buffer
// instead of allocating per call.
//
//minkowski:hotpath
func SampleSegmentInto(dst []LLA, a, b LLA, n int) []LLA {
	if n < 1 {
		n = 1
	}
	pa := a.ToECEF()
	pb := b.ToECEF()
	d := pb.Sub(pa)
	if cap(dst) >= n+1 {
		dst = dst[:n+1]
	} else {
		dst = make([]LLA, n+1)
	}
	for i := 0; i <= n; i++ {
		t := float64(i) / float64(n)
		dst[i] = pa.Add(d.Scale(t)).ToLLA()
	}
	return dst
}

// WrapAngle normalizes an angle to [0, 2π).
func WrapAngle(a float64) float64 {
	a = math.Mod(a, 2*math.Pi)
	if a < 0 {
		a += 2 * math.Pi
	}
	return a
}

// AngleDiff returns the smallest absolute difference between two
// angles, in [0, π].
func AngleDiff(a, b float64) float64 {
	d := math.Mod(a-b, 2*math.Pi)
	if d < 0 {
		d += 2 * math.Pi
	}
	if d > math.Pi {
		d = 2*math.Pi - d
	}
	return d
}
