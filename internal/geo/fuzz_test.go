package geo

import (
	"math"
	"math/rand"
	"testing"
)

// FuzzCellIndexNeighborhood fuzzes the index's load-bearing superset
// property: for any cell size, point cloud, and query, Near must
// visit every indexed point within one cell edge of the query
// (Euclidean), exactly once. False negatives would silently drop
// candidate links; double visits would double-evaluate pairs. The
// point cloud is derived deterministically from a fuzzed seed so the
// corpus stays tiny while the geometry varies.
func FuzzCellIndexNeighborhood(f *testing.F) {
	f.Add(int64(1), 100.0, 0.0, 0.0, 0.0)
	f.Add(int64(7), 900e3, 250.5, -101.25, 42.0)
	f.Add(int64(42), 1.5, -0.75, 0.75, -1.5)
	f.Add(int64(9), 50.0, 1e7, -1e7, 3.3e6)
	f.Fuzz(func(t *testing.T, seed int64, cellM, qx, qy, qz float64) {
		if math.IsNaN(cellM) || math.IsInf(cellM, 0) || cellM <= 0 || cellM > 1e8 {
			return
		}
		for _, v := range []float64{qx, qy, qz} {
			if math.IsNaN(v) || math.IsInf(v, 0) || math.Abs(v) > 1e8 {
				return
			}
		}
		rng := rand.New(rand.NewSource(seed))
		ci := NewCellIndex(cellM)
		q := Vec3{X: qx, Y: qy, Z: qz}
		pts := make([]Vec3, 64)
		for i := range pts {
			// Scatter points within a few cell edges of the query so a
			// useful fraction lands inside the neighborhood regardless
			// of the fuzzed scale.
			pts[i] = Vec3{
				X: qx + (rng.Float64()*6-3)*cellM,
				Y: qy + (rng.Float64()*6-3)*cellM,
				Z: qz + (rng.Float64()*6-3)*cellM,
			}
			ci.Insert(int32(i), pts[i])
		}
		visited := make(map[int32]int)
		ci.Near(q, func(id int32) { visited[id]++ })
		for id, n := range visited {
			if n != 1 {
				t.Fatalf("seed=%d cell=%v: id %d visited %d times", seed, cellM, id, n)
			}
		}
		for i, p := range pts {
			if p.Sub(q).Norm() <= cellM && visited[int32(i)] == 0 {
				t.Fatalf("seed=%d cell=%v: point %d at distance %v missed by Near",
					seed, cellM, i, p.Sub(q).Norm())
			}
		}
	})
}
