package geo

import (
	"fmt"
	"math/rand"
	"testing"
)

// TestCellIndexNearSuperset is the index's load-bearing guarantee:
// Near must visit every indexed point within one cell edge of the
// query (false positives are fine — callers gate on exact distance —
// false negatives would silently drop candidate links).
func TestCellIndexNearSuperset(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	const cell = 100.0
	ci := NewCellIndex(cell)
	pts := make([]Vec3, 400)
	for i := range pts {
		pts[i] = Vec3{
			X: -500 + rng.Float64()*1000,
			Y: -500 + rng.Float64()*1000,
			Z: -500 + rng.Float64()*1000,
		}
		ci.Insert(int32(i), pts[i])
	}
	if ci.Len() != len(pts) {
		t.Fatalf("Len = %d, want %d", ci.Len(), len(pts))
	}
	queries := append([]Vec3{}, pts[:50]...)
	for i := 0; i < 50; i++ {
		queries = append(queries, Vec3{
			X: -600 + rng.Float64()*1200,
			Y: -600 + rng.Float64()*1200,
			Z: -600 + rng.Float64()*1200,
		})
	}
	for qi, q := range queries {
		visited := map[int32]bool{}
		ci.Near(q, func(id int32) {
			if visited[id] {
				t.Fatalf("query %d: id %d visited twice", qi, id)
			}
			visited[id] = true
		})
		for id, p := range pts {
			if p.Sub(q).Norm() <= cell && !visited[int32(id)] {
				t.Errorf("query %d: point %d at %.1f m missed (cell %d m)",
					qi, id, p.Sub(q).Norm(), int(cell))
			}
		}
	}
}

// TestCellIndexDeterministicOrder: identical contents must produce an
// identical visit sequence (the evaluator's output ordering and its
// parallel slot layout both assume it).
func TestCellIndexDeterministicOrder(t *testing.T) {
	build := func() (*CellIndex, []Vec3) {
		rng := rand.New(rand.NewSource(9))
		ci := NewCellIndex(50)
		pts := make([]Vec3, 100)
		for i := range pts {
			pts[i] = Vec3{X: rng.Float64() * 300, Y: rng.Float64() * 300, Z: rng.Float64() * 300}
			ci.Insert(int32(i), pts[i])
		}
		return ci, pts
	}
	a, pts := build()
	b, _ := build()
	for _, q := range pts[:20] {
		var sa, sb []int32
		a.Near(q, func(id int32) { sa = append(sa, id) })
		b.Near(q, func(id int32) { sb = append(sb, id) })
		if fmt.Sprint(sa) != fmt.Sprint(sb) {
			t.Fatalf("visit order differs: %v vs %v", sa, sb)
		}
	}
}

// TestCellIndexResetReuse: Reset must fully empty the index while
// reusing buckets, including across cell-size changes.
func TestCellIndexResetReuse(t *testing.T) {
	ci := NewCellIndex(100)
	for i := 0; i < 50; i++ {
		ci.Insert(int32(i), Vec3{X: float64(i) * 30}) // spans several cells
	}
	ci.Reset(200)
	if ci.Len() != 0 {
		t.Fatalf("Len after Reset = %d", ci.Len())
	}
	seen := 0
	ci.Near(Vec3{}, func(int32) { seen++ })
	if seen != 0 {
		t.Fatalf("Reset index still visits %d points", seen)
	}
	ci.Insert(7, Vec3{X: 10})
	found := false
	ci.Near(Vec3{X: 50}, func(id int32) { found = found || id == 7 })
	if !found {
		t.Error("insert after Reset not visible")
	}
}

// TestCellIndexNegativeCoordinates: floor division must bucket
// correctly across the origin (naive int truncation maps -0.5 and
// +0.5 cells together).
func TestCellIndexNegativeCoordinates(t *testing.T) {
	ci := NewCellIndex(100)
	a := Vec3{X: -30}
	b := Vec3{X: 30}
	ci.Insert(0, a)
	ci.Insert(1, b)
	got := map[int32]bool{}
	ci.Near(Vec3{X: -90}, func(id int32) { got[id] = true })
	if !got[0] || !got[1] {
		t.Errorf("points straddling the origin must be adjacent: %v", got)
	}
	if floorDiv(-1, 100) != -1 {
		t.Error("floorDiv(-1, 100) must floor to -1, not truncate to 0")
	}
	if floorDiv(-100, 100) != -1 {
		t.Errorf("floorDiv(-100, 100) = %v, want -1", floorDiv(-100, 100))
	}
	if floorDiv(99, 100) != 0 {
		t.Errorf("floorDiv(99, 100) = %v, want 0", floorDiv(99, 100))
	}
}
