// Package stats provides the small statistical toolkit the
// evaluation harness uses to regenerate the paper's figures:
// quantiles, empirical CDFs, histograms, and formatting helpers.
package stats

import (
	"fmt"
	"math"
	"sort"
	"time"
)

// Sample is a growing collection of float64 observations.
type Sample struct {
	xs     []float64
	sorted bool
}

// Add appends an observation.
func (s *Sample) Add(x float64) {
	s.xs = append(s.xs, x)
	s.sorted = false
}

// AddAll appends many observations.
func (s *Sample) AddAll(xs []float64) {
	s.xs = append(s.xs, xs...)
	s.sorted = false
}

// N returns the observation count.
func (s *Sample) N() int { return len(s.xs) }

// sort ensures ascending order.
func (s *Sample) sort() {
	if !s.sorted {
		sort.Float64s(s.xs)
		s.sorted = true
	}
}

// Quantile returns the q-th (0..1) empirical quantile using nearest-
// rank; NaN on an empty sample.
func (s *Sample) Quantile(q float64) float64 {
	if len(s.xs) == 0 {
		return math.NaN()
	}
	s.sort()
	if q <= 0 {
		return s.xs[0]
	}
	if q >= 1 {
		return s.xs[len(s.xs)-1]
	}
	i := int(math.Ceil(q*float64(len(s.xs)))) - 1
	if i < 0 {
		i = 0
	}
	return s.xs[i]
}

// Median is Quantile(0.5).
func (s *Sample) Median() float64 { return s.Quantile(0.5) }

// Mean returns the arithmetic mean (NaN when empty).
func (s *Sample) Mean() float64 {
	if len(s.xs) == 0 {
		return math.NaN()
	}
	sum := 0.0
	for _, x := range s.xs {
		sum += x
	}
	return sum / float64(len(s.xs))
}

// Min and Max return the extremes (NaN when empty).
func (s *Sample) Min() float64 {
	if len(s.xs) == 0 {
		return math.NaN()
	}
	s.sort()
	return s.xs[0]
}

// Max returns the largest observation.
func (s *Sample) Max() float64 {
	if len(s.xs) == 0 {
		return math.NaN()
	}
	s.sort()
	return s.xs[len(s.xs)-1]
}

// Stddev returns the sample standard deviation.
func (s *Sample) Stddev() float64 {
	n := len(s.xs)
	if n < 2 {
		return 0
	}
	m := s.Mean()
	acc := 0.0
	for _, x := range s.xs {
		acc += (x - m) * (x - m)
	}
	return math.Sqrt(acc / float64(n-1))
}

// FracBelow returns the fraction of observations ≤ x.
func (s *Sample) FracBelow(x float64) float64 {
	if len(s.xs) == 0 {
		return math.NaN()
	}
	s.sort()
	i := sort.SearchFloat64s(s.xs, math.Nextafter(x, math.Inf(1)))
	return float64(i) / float64(len(s.xs))
}

// CDFPoint is one (x, P[X ≤ x]) pair.
type CDFPoint struct {
	X float64
	P float64
}

// CDF returns n evenly probability-spaced points of the empirical
// CDF, suitable for plotting the paper's CDF figures.
func (s *Sample) CDF(n int) []CDFPoint {
	if len(s.xs) == 0 || n < 2 {
		return nil
	}
	s.sort()
	out := make([]CDFPoint, 0, n)
	for i := 0; i < n; i++ {
		p := float64(i) / float64(n-1)
		out = append(out, CDFPoint{X: s.Quantile(p), P: p})
	}
	return out
}

// Histogram bins observations into equal-width bins over [lo, hi];
// out-of-range values clamp to the edge bins. Returns bin centers and
// counts.
func (s *Sample) Histogram(lo, hi float64, bins int) (centers []float64, counts []int) {
	if bins < 1 || hi <= lo {
		return nil, nil
	}
	centers = make([]float64, bins)
	counts = make([]int, bins)
	w := (hi - lo) / float64(bins)
	for i := range centers {
		centers[i] = lo + w*(float64(i)+0.5)
	}
	for _, x := range s.xs {
		i := int((x - lo) / w)
		if i < 0 {
			i = 0
		}
		if i >= bins {
			i = bins - 1
		}
		counts[i]++
	}
	return centers, counts
}

// Values returns a copy of the raw observations.
func (s *Sample) Values() []float64 {
	out := make([]float64, len(s.xs))
	copy(out, s.xs)
	return out
}

// Summary formats the canonical quantile row used in EXPERIMENTS.md.
func (s *Sample) Summary() string {
	if s.N() == 0 {
		return "n=0"
	}
	return fmt.Sprintf("n=%d min=%.3g p50=%.3g p90=%.3g p99=%.3g max=%.3g mean=%.3g",
		s.N(), s.Min(), s.Median(), s.Quantile(0.9), s.Quantile(0.99), s.Max(), s.Mean())
}

// FmtDuration renders seconds the way the paper does ("1m27s",
// "14m50s", "23s").
func FmtDuration(seconds float64) string {
	if math.IsNaN(seconds) {
		return "n/a"
	}
	d := time.Duration(seconds * float64(time.Second)).Round(time.Second)
	return d.String()
}

// Counter is a labelled tally.
type Counter struct {
	counts map[string]int
	total  int
}

// NewCounter creates an empty counter.
func NewCounter() *Counter { return &Counter{counts: map[string]int{}} }

// Inc adds one to a label.
func (c *Counter) Inc(label string) {
	c.counts[label]++
	c.total++
}

// Get returns a label's count.
func (c *Counter) Get(label string) int { return c.counts[label] }

// Total returns the sum of all labels.
func (c *Counter) Total() int { return c.total }

// Frac returns the fraction of the total carried by a label.
func (c *Counter) Frac(label string) float64 {
	if c.total == 0 {
		return math.NaN()
	}
	return float64(c.counts[label]) / float64(c.total)
}

// Labels returns all labels, sorted.
func (c *Counter) Labels() []string {
	out := make([]string, 0, len(c.counts))
	for l := range c.counts {
		out = append(out, l)
	}
	sort.Strings(out)
	return out
}

// TimeWeighted accumulates a time-weighted average of a piecewise-
// constant signal (e.g. "fraction of transceivers used" over time).
type TimeWeighted struct {
	lastT   float64
	lastV   float64
	area    float64
	elapsed float64
	started bool
}

// Observe records that the signal has value v from time t onward.
func (tw *TimeWeighted) Observe(t, v float64) {
	if tw.started {
		dt := t - tw.lastT
		if dt > 0 {
			tw.area += tw.lastV * dt
			tw.elapsed += dt
		}
	}
	tw.lastT, tw.lastV, tw.started = t, v, true
}

// Mean returns the time-weighted mean so far.
func (tw *TimeWeighted) Mean() float64 {
	if tw.elapsed == 0 {
		return math.NaN()
	}
	return tw.area / tw.elapsed
}
