package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestQuantileBasics(t *testing.T) {
	var s Sample
	for i := 1; i <= 100; i++ {
		s.Add(float64(i))
	}
	if got := s.Median(); got != 50 {
		t.Errorf("median = %v, want 50", got)
	}
	if got := s.Quantile(0.9); got != 90 {
		t.Errorf("p90 = %v, want 90", got)
	}
	if got := s.Quantile(0); got != 1 {
		t.Errorf("p0 = %v, want 1", got)
	}
	if got := s.Quantile(1); got != 100 {
		t.Errorf("p100 = %v, want 100", got)
	}
}

func TestQuantileEmpty(t *testing.T) {
	var s Sample
	if !math.IsNaN(s.Quantile(0.5)) || !math.IsNaN(s.Mean()) {
		t.Error("empty sample must report NaN")
	}
}

func TestQuantileSingleSample(t *testing.T) {
	var s Sample
	s.Add(42)
	for _, q := range []float64{0, 0.25, 0.5, 0.99, 1} {
		if got := s.Quantile(q); got != 42 {
			t.Errorf("Quantile(%v) on single sample = %v, want 42", q, got)
		}
	}
	if got := s.Min(); got != 42 {
		t.Errorf("Min = %v, want 42", got)
	}
	if got := s.Max(); got != 42 {
		t.Errorf("Max = %v, want 42", got)
	}
	if got := s.Stddev(); got != 0 {
		t.Errorf("Stddev of single sample = %v, want 0", got)
	}
}

func TestQuantileDuplicateValues(t *testing.T) {
	// Nearest-rank over an all-equal sample must return that value at
	// every q, and a heavily tied sample must return a tied value at
	// quantiles inside the tie run.
	var s Sample
	for i := 0; i < 10; i++ {
		s.Add(7)
	}
	for _, q := range []float64{0, 0.1, 0.5, 0.9, 1} {
		if got := s.Quantile(q); got != 7 {
			t.Errorf("all-equal Quantile(%v) = %v, want 7", q, got)
		}
	}
	var m Sample
	m.AddAll([]float64{1, 5, 5, 5, 5, 5, 5, 5, 5, 9})
	if got := m.Median(); got != 5 {
		t.Errorf("tied median = %v, want 5", got)
	}
	if got := m.Quantile(0.2); got != 5 {
		t.Errorf("Quantile(0.2) = %v, want 5 (inside tie run)", got)
	}
	if got := m.Quantile(0.05); got != 1 {
		t.Errorf("Quantile(0.05) = %v, want 1", got)
	}
	if got := m.Quantile(1); got != 9 {
		t.Errorf("Quantile(1) = %v, want 9", got)
	}
}

func TestQuantileOutOfRangeQ(t *testing.T) {
	var s Sample
	s.AddAll([]float64{3, 1, 2})
	if got := s.Quantile(-0.5); got != 1 {
		t.Errorf("Quantile(-0.5) = %v, want min", got)
	}
	if got := s.Quantile(1.5); got != 3 {
		t.Errorf("Quantile(1.5) = %v, want max", got)
	}
}

func TestCDFEdgeCases(t *testing.T) {
	// Empty sample and degenerate n both yield nil — the plotting
	// layer treats that as "no series", never a zero-length axis.
	var empty Sample
	if got := empty.CDF(10); got != nil {
		t.Errorf("empty CDF = %v, want nil", got)
	}
	var s Sample
	s.Add(1)
	if got := s.CDF(1); got != nil {
		t.Errorf("CDF(n=1) = %v, want nil", got)
	}
	if got := s.CDF(0); got != nil {
		t.Errorf("CDF(n=0) = %v, want nil", got)
	}
	// Single observation: every point carries the same X and P spans [0,1].
	cdf := s.CDF(5)
	if len(cdf) != 5 {
		t.Fatalf("len = %d, want 5", len(cdf))
	}
	for _, p := range cdf {
		if p.X != 1 {
			t.Errorf("single-sample CDF X = %v, want 1", p.X)
		}
	}
	if cdf[0].P != 0 || cdf[4].P != 1 {
		t.Error("CDF must span [0,1]")
	}
	// Duplicates: X stays monotone (non-decreasing) through tie runs.
	var d Sample
	d.AddAll([]float64{2, 2, 2, 2, 8})
	pts := d.CDF(6)
	for i := 1; i < len(pts); i++ {
		if pts[i].X < pts[i-1].X {
			t.Errorf("CDF X not monotone at %d: %v < %v", i, pts[i].X, pts[i-1].X)
		}
	}
}

func TestFracBelowEmpty(t *testing.T) {
	var s Sample
	if !math.IsNaN(s.FracBelow(1)) {
		t.Error("empty FracBelow must be NaN")
	}
}

func TestQuantileMonotoneProperty(t *testing.T) {
	f := func(xs []float64, q1, q2 float64) bool {
		if len(xs) == 0 {
			return true
		}
		var s Sample
		for _, x := range xs {
			if math.IsNaN(x) {
				return true
			}
			s.Add(x)
		}
		q1 = math.Abs(math.Mod(q1, 1))
		q2 = math.Abs(math.Mod(q2, 1))
		if q1 > q2 {
			q1, q2 = q2, q1
		}
		return s.Quantile(q1) <= s.Quantile(q2)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestMeanAndStddev(t *testing.T) {
	var s Sample
	s.AddAll([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if got := s.Mean(); got != 5 {
		t.Errorf("mean = %v, want 5", got)
	}
	// Sample stddev of that classic set is ~2.138.
	if got := s.Stddev(); math.Abs(got-2.138) > 0.01 {
		t.Errorf("stddev = %v, want ~2.138", got)
	}
}

func TestFracBelow(t *testing.T) {
	var s Sample
	s.AddAll([]float64{1, 2, 3, 4, 5})
	cases := []struct{ x, want float64 }{
		{0, 0}, {1, 0.2}, {3, 0.6}, {5, 1}, {10, 1},
	}
	for _, c := range cases {
		if got := s.FracBelow(c.x); math.Abs(got-c.want) > 1e-9 {
			t.Errorf("FracBelow(%v) = %v, want %v", c.x, got, c.want)
		}
	}
}

func TestCDFShape(t *testing.T) {
	var s Sample
	for i := 0; i < 1000; i++ {
		s.Add(float64(i))
	}
	cdf := s.CDF(11)
	if len(cdf) != 11 {
		t.Fatalf("len = %d", len(cdf))
	}
	for i := 1; i < len(cdf); i++ {
		if cdf[i].P <= cdf[i-1].P || cdf[i].X < cdf[i-1].X {
			t.Error("CDF must be monotone in both coordinates")
		}
	}
	if cdf[0].P != 0 || cdf[len(cdf)-1].P != 1 {
		t.Error("CDF must span [0,1]")
	}
}

func TestHistogram(t *testing.T) {
	var s Sample
	s.AddAll([]float64{-5, 0.5, 1.5, 1.6, 9.5, 20})
	centers, counts := s.Histogram(0, 10, 10)
	if len(centers) != 10 || len(counts) != 10 {
		t.Fatal("bad bin count")
	}
	if counts[0] != 2 { // -5 clamps in, 0.5 lands in bin 0
		t.Errorf("bin 0 = %d, want 2", counts[0])
	}
	if counts[1] != 2 { // 1.5, 1.6
		t.Errorf("bin 1 = %d, want 2", counts[1])
	}
	if counts[9] != 2 { // 9.5 in, 20 clamps in
		t.Errorf("bin 9 = %d, want 2", counts[9])
	}
	total := 0
	for _, c := range counts {
		total += c
	}
	if total != s.N() {
		t.Error("histogram must conserve observations")
	}
}

func TestFmtDuration(t *testing.T) {
	cases := []struct {
		s    float64
		want string
	}{
		{23, "23s"},
		{87, "1m27s"},
		{890, "14m50s"},
		{math.NaN(), "n/a"},
	}
	for _, c := range cases {
		if got := FmtDuration(c.s); got != c.want {
			t.Errorf("FmtDuration(%v) = %q, want %q", c.s, got, c.want)
		}
	}
}

func TestCounter(t *testing.T) {
	c := NewCounter()
	c.Inc("withdrawn")
	c.Inc("withdrawn")
	c.Inc("rf-fade")
	if c.Get("withdrawn") != 2 || c.Total() != 3 {
		t.Error("counts wrong")
	}
	if math.Abs(c.Frac("withdrawn")-2.0/3) > 1e-9 {
		t.Error("frac wrong")
	}
	labels := c.Labels()
	if len(labels) != 2 || labels[0] != "rf-fade" {
		t.Errorf("labels = %v", labels)
	}
}

func TestTimeWeighted(t *testing.T) {
	var tw TimeWeighted
	tw.Observe(0, 1.0)  // value 1 from t=0
	tw.Observe(10, 0.0) // value 0 from t=10
	tw.Observe(20, 0.0)
	// 10 s at 1.0 + 10 s at 0.0 = mean 0.5.
	if got := tw.Mean(); math.Abs(got-0.5) > 1e-9 {
		t.Errorf("time-weighted mean = %v, want 0.5", got)
	}
}

func TestTimeWeightedEmpty(t *testing.T) {
	var tw TimeWeighted
	if !math.IsNaN(tw.Mean()) {
		t.Error("no elapsed time must be NaN")
	}
}

func TestSummaryString(t *testing.T) {
	var s Sample
	if s.Summary() != "n=0" {
		t.Error("empty summary")
	}
	s.AddAll([]float64{1, 2, 3})
	if got := s.Summary(); got == "" || got == "n=0" {
		t.Errorf("summary = %q", got)
	}
}

func BenchmarkQuantile(b *testing.B) {
	var s Sample
	for i := 0; i < 100000; i++ {
		s.Add(float64(i % 977))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = s.Quantile(0.99)
	}
}
