package platform

import (
	"testing"

	"minkowski/internal/antenna"
	"minkowski/internal/flight"
	"minkowski/internal/geo"
	"minkowski/internal/wind"
)

func TestSolarOutput(t *testing.T) {
	if SolarOutputW(0) != 0 {
		t.Error("midnight should be dark")
	}
	if SolarOutputW(3*3600) != 0 {
		t.Error("03:00 should be dark")
	}
	noon := SolarOutputW(12 * 3600)
	if noon != SolarPeakW {
		t.Errorf("noon output = %v, want peak %v", noon, SolarPeakW)
	}
	morning := SolarOutputW(8 * 3600)
	if morning <= 0 || morning >= noon {
		t.Errorf("08:00 output = %v, want between 0 and noon", morning)
	}
	// Periodicity across days.
	if SolarOutputW(12*3600) != SolarOutputW(12*3600+3*DayLengthS) {
		t.Error("solar output must repeat daily")
	}
}

func TestPowerDailyCycle(t *testing.T) {
	p := NewPower()
	var onAt, offAt []float64
	wasOn := p.CommsOn
	// Simulate 3 days at 1-minute resolution.
	for tick := 0; tick < 3*24*60; tick++ {
		tm := float64(tick) * 60
		p.Step(tm, 60)
		if p.CommsOn != wasOn {
			if p.CommsOn {
				onAt = append(onAt, tm)
			} else {
				offAt = append(offAt, tm)
			}
			wasOn = p.CommsOn
		}
	}
	if len(onAt) < 3 || len(offAt) < 2 {
		t.Fatalf("expected daily on/off cycling, got on=%d off=%d", len(onAt), len(offAt))
	}
	// Comms come on shortly after dawn (between 06:00 and 08:00).
	for _, tm := range onAt {
		tod := int(tm) % DayLengthS
		if tod < SunriseS || tod > SunriseS+2*3600 {
			t.Errorf("comms on at %02d:%02d, want shortly after dawn", tod/3600, (tod%3600)/60)
		}
	}
	// Comms shed in the first few hours of darkness (18:00–23:00).
	for _, tm := range offAt {
		tod := int(tm) % DayLengthS
		if tod < SunsetS || tod > 23*3600 {
			t.Errorf("comms off at %02d:%02d, want first hours of darkness", tod/3600, (tod%3600)/60)
		}
	}
	// Service window ≈ 14 h (12 h daylight + a few hours of battery).
	if len(onAt) > 0 && len(offAt) > 0 {
		window := offAt[len(offAt)-1] - onAt[len(onAt)-1]
		if window < 12*3600 || window > 17*3600 {
			t.Errorf("service window = %.1f h, want ~14 h", window/3600)
		}
	}
}

func TestPowerReserveNeverForComms(t *testing.T) {
	p := NewPower()
	for tick := 0; tick < 2*24*60; tick++ {
		tm := float64(tick) * 60
		p.Step(tm, 60)
		if p.CommsOn && SolarOutputW(tm) < CommsOnSolarW && p.BatteryWh < ReserveWh-50 {
			t.Fatalf("comms running %v Wh below reserve at t=%v", ReserveWh-p.BatteryWh, tm)
		}
	}
}

func TestBalloonNodeConstruction(t *testing.T) {
	b := &flight.Balloon{ID: "hbal-001", Pos: geo.LLADeg(-1, 37, 17000)}
	n := NewBalloonNode(b)
	if n.Kind != KindBalloon || len(n.Xcvrs) != 3 {
		t.Fatalf("balloon node: kind=%v xcvrs=%d", n.Kind, len(n.Xcvrs))
	}
	if n.Position() != b.Pos {
		t.Error("node position must track the vehicle")
	}
	for i, x := range n.Xcvrs {
		want := "hbal-001/xcvr-" + string(rune('0'+i))
		if x.ID != want {
			t.Errorf("xcvr ID = %q, want %q", x.ID, want)
		}
		if x.Node != n {
			t.Error("transceiver must back-reference its node")
		}
	}
	if n.Power == nil {
		t.Error("balloon must have a power system")
	}
}

func TestGroundStationConstruction(t *testing.T) {
	site := geo.LLADeg(-1.3, 36.8, 1600)
	gs := NewGroundStation("gs-nairobi", site, []antenna.Occlusion{})
	if gs.Kind != KindGround || len(gs.Xcvrs) != 2 {
		t.Fatalf("ground node: kind=%v xcvrs=%d", gs.Kind, len(gs.Xcvrs))
	}
	if !gs.Operational() {
		t.Error("ground stations are always operational")
	}
	if gs.Position() != site {
		t.Error("ground position must be the site")
	}
}

func newTestFleet(size int) (*Fleet, *wind.Field) {
	w := wind.NewField(wind.DefaultConfig())
	target := geo.LLADeg(-1, 37, 0)
	cfg := flight.DefaultConfig(target)
	cfg.FleetSize = size
	fms := flight.NewFMS(cfg, w)
	gs := NewGroundStation("gs-0", geo.LLADeg(-1.3, 36.8, 1600), nil)
	return NewFleet(fms, []*Node{gs}), w
}

func TestFleetNodes(t *testing.T) {
	f, _ := newTestFleet(10)
	nodes := f.Nodes()
	if len(nodes) != 11 {
		t.Fatalf("nodes = %d, want 11", len(nodes))
	}
	if nodes[0].Kind != KindGround {
		t.Error("ground stations must come first")
	}
	// Deterministic order.
	for i := 2; i < len(nodes); i++ {
		if nodes[i-1].ID >= nodes[i].ID {
			t.Error("balloon nodes must be ID-sorted")
		}
	}
}

func TestFleetJoinEvents(t *testing.T) {
	f, _ := newTestFleet(10)
	joined, left := f.DrainEvents()
	if len(joined) != 10 || len(left) != 0 {
		t.Fatalf("initial events: joined=%d left=%d", len(joined), len(left))
	}
	// Drain clears.
	joined, left = f.DrainEvents()
	if len(joined) != 0 || len(left) != 0 {
		t.Error("DrainEvents must clear")
	}
}

func TestFleetRecyclingProducesLeaveJoin(t *testing.T) {
	f, w := newTestFleet(10)
	f.FMS.RecycleRadiusM = 80e3 // force recycling quickly
	f.DrainEvents()
	var joined, left int
	for tick := 0; tick < 24*60; tick++ {
		w.Step(60)
		f.Step(float64(tick)*60, 60)
		j, l := f.DrainEvents()
		joined += len(j)
		left += len(l)
	}
	if joined == 0 || left == 0 {
		t.Errorf("recycling produced joined=%d left=%d, want both > 0", joined, left)
	}
	if joined != left {
		t.Errorf("replacement recycling must balance: joined=%d left=%d", joined, left)
	}
	if len(f.Balloons) != 10 {
		t.Errorf("fleet node count drifted to %d", len(f.Balloons))
	}
}

func TestOperationalFollowsPower(t *testing.T) {
	f, w := newTestFleet(5)
	// At midnight no balloon is operational; the ground station is.
	ops := f.OperationalNodes()
	if len(ops) != 1 || ops[0].Kind != KindGround {
		t.Errorf("at t=0 (midnight) only the GS should be operational, got %d", len(ops))
	}
	// Advance to mid-day.
	for tick := 0; tick < 12*60; tick++ {
		w.Step(60)
		f.Step(float64(tick)*60, 60)
	}
	ops = f.OperationalNodes()
	if len(ops) != 6 {
		t.Errorf("at noon all 6 nodes should be operational, got %d", len(ops))
	}
}

func TestTransceiversEnumeration(t *testing.T) {
	f, w := newTestFleet(5)
	for tick := 0; tick < 12*60; tick++ {
		w.Step(60)
		f.Step(float64(tick)*60, 60)
	}
	xs := f.Transceivers()
	// 1 GS × 2 + 5 balloons × 3 = 17.
	if len(xs) != 17 {
		t.Fatalf("transceivers = %d, want 17", len(xs))
	}
	seen := map[string]bool{}
	for _, x := range xs {
		if seen[x.ID] {
			t.Errorf("duplicate transceiver %s", x.ID)
		}
		seen[x.ID] = true
	}
}

func BenchmarkFleetStep(b *testing.B) {
	f, w := newTestFleet(30)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w.Step(60)
		f.Step(float64(i)*60, 60)
	}
}
