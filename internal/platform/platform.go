package platform

import (
	"fmt"
	"sort"

	"minkowski/internal/antenna"
	"minkowski/internal/flight"
	"minkowski/internal/geo"
	"minkowski/internal/rf"
)

// Kind distinguishes node types. The paper's future work calls for
// differentiating airborne/ground/maritime nodes; Loon had two.
type Kind int

const (
	// KindBalloon is a stratospheric HAPS node.
	KindBalloon Kind = iota
	// KindGround is a ground-station gateway node.
	KindGround
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	if k == KindGround {
		return "ground"
	}
	return "balloon"
}

// Transceiver is one pointable radio on a node: an antenna mount plus
// an RF chain. Transceiver IDs are stable, globally unique strings
// ("hbal-001/xcvr-2", "gs-nairobi/xcvr-0").
type Transceiver struct {
	ID    string
	Node  *Node
	Mount *antenna.Mount
	Radio rf.Radio
	// Busy marks the transceiver as tasked with a link (maintained by
	// the radio fabric).
	Busy bool
}

// String implements fmt.Stringer.
func (x *Transceiver) String() string { return x.ID }

// Node is a network platform: a balloon or a ground station.
type Node struct {
	ID   string
	Kind Kind
	// Balloon backs a KindBalloon node's position and motion.
	Balloon *flight.Balloon
	// FixedPos backs a KindGround node's position.
	FixedPos geo.LLA
	// Xcvrs are the node's transceivers (3 for balloons, 2 for
	// ground stations).
	Xcvrs []*Transceiver
	// Power is the balloon energy system; nil for ground stations
	// (wired power).
	Power *Power
}

// Position returns the node's current position.
func (n *Node) Position() geo.LLA {
	if n.Kind == KindBalloon {
		return n.Balloon.Pos
	}
	return n.FixedPos
}

// Operational reports whether the node's communications payload is
// powered. Ground stations are always operational.
func (n *Node) Operational() bool {
	if n.Power == nil {
		return true
	}
	return n.Power.CommsOn
}

// String implements fmt.Stringer.
func (n *Node) String() string { return n.ID }

// NewBalloonNode wraps a flight vehicle in a network node with the
// standard three-corner transceiver installation.
func NewBalloonNode(b *flight.Balloon) *Node { return NewBalloonNodeN(b, 3) }

// NewBalloonNodeN builds a balloon node with n transceivers (the
// Appendix A transceiver-count study).
func NewBalloonNodeN(b *flight.Balloon, nXcvrs int) *Node {
	n := &Node{ID: b.ID, Kind: KindBalloon, Balloon: b, Power: NewPower()}
	for i, m := range antenna.BalloonMountsN(nXcvrs) {
		n.Xcvrs = append(n.Xcvrs, &Transceiver{
			ID:    fmt.Sprintf("%s/xcvr-%d", b.ID, i),
			Node:  n,
			Mount: m,
			Radio: rf.EBandRadio(),
		})
	}
	return n
}

// NewGroundStation creates a gateway node at a site with the standard
// two-transceiver radome installation and the site's terrain
// occlusions.
func NewGroundStation(id string, site geo.LLA, terrain []antenna.Occlusion) *Node {
	n := &Node{ID: id, Kind: KindGround, FixedPos: site}
	for i, m := range antenna.GroundMounts(terrain) {
		n.Xcvrs = append(n.Xcvrs, &Transceiver{
			ID:    fmt.Sprintf("%s/xcvr-%d", id, i),
			Node:  n,
			Mount: m,
			Radio: rf.EBandRadio(),
		})
	}
	return n
}

// Fleet is the set of all platforms: the balloon fleet (backed by the
// FMS) plus ground stations. It keeps node wrappers in sync with the
// FMS's recycling (a recycled balloon is a node leaving the network
// and a new one joining).
type Fleet struct {
	FMS      *flight.FMS
	Balloons map[string]*Node // by node ID
	Grounds  []*Node

	// Joined and Left record fleet membership changes since the last
	// call to DrainEvents (consumed by the SDN's entity layer).
	joined, left []*Node

	byVehicle map[*flight.Balloon]*Node
}

// NewFleet wraps an FMS fleet and ground stations.
func NewFleet(fms *flight.FMS, grounds []*Node) *Fleet {
	f := &Fleet{
		FMS:       fms,
		Balloons:  make(map[string]*Node),
		Grounds:   grounds,
		byVehicle: make(map[*flight.Balloon]*Node),
	}
	for _, b := range fms.Fleet {
		n := NewBalloonNode(b)
		f.Balloons[n.ID] = n
		f.byVehicle[b] = n
		f.joined = append(f.joined, n)
	}
	return f
}

// Step advances flight and power by dt at sim time t, then
// reconciles fleet membership with the FMS.
func (f *Fleet) Step(t, dt float64) {
	f.FMS.Step(dt)
	// Reconcile: any vehicle in the FMS fleet without a node is a
	// join; any node whose vehicle is gone is a leave.
	current := make(map[*flight.Balloon]bool, len(f.FMS.Fleet))
	for _, b := range f.FMS.Fleet {
		current[b] = true
		if _, ok := f.byVehicle[b]; !ok {
			n := NewBalloonNode(b)
			f.Balloons[n.ID] = n
			f.byVehicle[b] = n
			f.joined = append(f.joined, n)
		}
	}
	leftStart := len(f.left)
	for veh, node := range f.byVehicle {
		if !current[veh] {
			delete(f.byVehicle, veh)
			delete(f.Balloons, node.ID)
			f.left = append(f.left, node)
		}
	}
	// The sweep above ranges a pointer-keyed map; sort this step's
	// departures so leave events drain in a run-independent order.
	sort.Slice(f.left[leftStart:], func(i, j int) bool {
		return f.left[leftStart+i].ID < f.left[leftStart+j].ID
	})
	// Power.
	for _, n := range f.Balloons {
		n.Power.Step(t, dt)
	}
}

// DrainEvents returns and clears the joined/left node lists.
func (f *Fleet) DrainEvents() (joined, left []*Node) {
	joined, left = f.joined, f.left
	f.joined, f.left = nil, nil
	return joined, left
}

// Nodes returns all nodes, ground stations first, then balloons in
// deterministic (ID-sorted) order.
func (f *Fleet) Nodes() []*Node {
	out := make([]*Node, 0, len(f.Grounds)+len(f.Balloons))
	out = append(out, f.Grounds...)
	ids := make([]string, 0, len(f.Balloons))
	for id := range f.Balloons {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, id := range ids {
		out = append(out, f.Balloons[id])
	}
	return out
}

// OperationalNodes returns the nodes whose payloads are powered.
func (f *Fleet) OperationalNodes() []*Node {
	var out []*Node
	for _, n := range f.Nodes() {
		if n.Operational() {
			out = append(out, n)
		}
	}
	return out
}

// Transceivers returns every transceiver on operational nodes, in
// deterministic order.
func (f *Fleet) Transceivers() []*Transceiver {
	var out []*Transceiver
	for _, n := range f.OperationalNodes() {
		out = append(out, n.Xcvrs...)
	}
	return out
}
