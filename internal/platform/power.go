// Package platform models the network nodes: balloons with their
// power-constrained communications payloads, and ground stations with
// wired power and backhaul (§2.2).
package platform

import "math"

// Power constants for the communications payload. The shapes matter
// more than the absolute values: solar generation peaks mid-day, the
// battery stores only a few hours of comms load above the safety
// reserve, so the network serves "from shortly after dawn through the
// first few hours of darkness each day (approximately 14 hours)" and
// must re-bootstrap every morning.
const (
	// SolarPeakW is the array output at local noon.
	SolarPeakW = 1200
	// CommsLoadW is the combined LTE + backhaul payload draw.
	CommsLoadW = 300
	// AvionicsLoadW is the always-on safety-critical draw (flight
	// control, satcom) served from the reserve.
	AvionicsLoadW = 40
	// BatteryCapacityWh is total storage.
	BatteryCapacityWh = 2200
	// ReserveWh is kept for safety-critical systems; comms shed load
	// when the battery falls to the reserve.
	ReserveWh = 1100
	// CommsOnSolarW is the solar output threshold at which a morning
	// bootstrap is allowed (shortly after dawn).
	CommsOnSolarW = 150
	// DayLengthS is the diurnal period.
	DayLengthS = 86400
	// SunriseS and SunsetS are the local solar window within each
	// day (06:00–18:00, equatorial).
	SunriseS = 6 * 3600
	SunsetS  = 18 * 3600
)

// SolarOutputW returns the solar array output at a sim time (seconds
// since midnight of day zero): a half-sine between sunrise and
// sunset.
func SolarOutputW(t float64) float64 {
	tod := math.Mod(t, DayLengthS)
	if tod < 0 {
		tod += DayLengthS
	}
	if tod < SunriseS || tod > SunsetS {
		return 0
	}
	frac := (tod - SunriseS) / (SunsetS - SunriseS)
	return SolarPeakW * math.Sin(frac*math.Pi)
}

// Power is a balloon's energy state.
type Power struct {
	// BatteryWh is the current charge.
	BatteryWh float64
	// CommsOn reports whether the communications payload is powered.
	CommsOn bool
	// Transitions counts comms power transitions (telemetry).
	Transitions int
}

// NewPower returns a power system starting at night with a
// partially charged battery and comms off.
func NewPower() *Power {
	return &Power{BatteryWh: BatteryCapacityWh * 0.8}
}

// Step advances the power system by dt seconds at sim time t.
// It applies solar charge, payload loads, and the comms on/off
// policy:
//
//   - comms switch ON when solar output climbs past the bootstrap
//     threshold (shortly after dawn),
//   - comms stay on into the night until the battery falls to the
//     reserve, then shed (first few hours of darkness),
//   - avionics always draw from the battery (and may dip into
//     reserve; the balloon never turns avionics off).
func (p *Power) Step(t, dt float64) {
	solar := SolarOutputW(t)
	load := AvionicsLoadW
	if p.CommsOn {
		load += CommsLoadW
	}
	net := (solar - float64(load)) * dt / 3600 // Wh
	p.BatteryWh += net
	if p.BatteryWh > BatteryCapacityWh {
		p.BatteryWh = BatteryCapacityWh
	}
	if p.BatteryWh < 0 {
		p.BatteryWh = 0
	}
	// Policy transitions.
	if !p.CommsOn && solar >= CommsOnSolarW && p.BatteryWh > ReserveWh*0.5 {
		p.CommsOn = true
		p.Transitions++
	} else if p.CommsOn && solar < CommsOnSolarW && p.BatteryWh <= ReserveWh {
		p.CommsOn = false
		p.Transitions++
	}
}
