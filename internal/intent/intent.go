// Package intent holds the TS-SDN's intent layer (§3.1): the desired
// state of every link and route, tracked through explicit state
// machines, plus the reconciler that compares a solver plan against
// current intents and emits the actions needed to align them ("an
// actuation component compiled intents into desired per-node
// configuration, continuously monitored node state, and dispatched
// commands using the CDPI to align node behavior with the desired
// intents").
//
// The artifact appendix's link_intents table is exactly this
// package's history: "state transitions of each attempted link."
package intent

import (
	"fmt"
	"sort"

	"minkowski/internal/radio"
	"minkowski/internal/rf"
	"minkowski/internal/solver"
)

// LinkState is the lifecycle of a link intent.
type LinkState int

const (
	// LinkPending: created, not yet commanded.
	LinkPending LinkState = iota
	// LinkCommanded: establish commands dispatched (awaiting TTE).
	LinkCommanded
	// LinkInstalling: the radios are slewing/searching.
	LinkInstalling
	// LinkEstablished: up and carrying traffic.
	LinkEstablished
	// LinkWithdrawn: terminal, controller-initiated teardown.
	LinkWithdrawn
	// LinkFailed: terminal, anything unplanned.
	LinkFailed
)

// String implements fmt.Stringer.
func (s LinkState) String() string {
	switch s {
	case LinkPending:
		return "pending"
	case LinkCommanded:
		return "commanded"
	case LinkInstalling:
		return "installing"
	case LinkEstablished:
		return "established"
	case LinkWithdrawn:
		return "withdrawn"
	default:
		return "failed"
	}
}

// Terminal reports whether the state is final.
func (s LinkState) Terminal() bool { return s == LinkWithdrawn || s == LinkFailed }

// LinkIntent is the TS-SDN's desire for one link.
type LinkIntent struct {
	ID           uint64
	Link         radio.LinkID
	XA, XB       string // transceiver IDs
	NodeA, NodeB string
	Channel      rf.Channel
	// Redundant marks secondary-objective links.
	Redundant bool
	State     LinkState
	// Timestamps (sim seconds; zero = not reached).
	CreatedAt     float64
	CommandedAt   float64
	InstallingAt  float64
	EstablishedAt float64
	EndedAt       float64
	// Attempts counts establishment tries.
	Attempts int
	// FailReason records the radio's reason on failure.
	FailReason string
}

// String implements fmt.Stringer.
func (li *LinkIntent) String() string {
	return fmt.Sprintf("link-intent %d %s [%s]", li.ID, li.Link, li.State)
}

// Clone returns an independent deep copy. Journal entries and
// replication-stream payloads must not share mutable state with the
// live store, or a later state transition would silently rewrite
// history.
func (li *LinkIntent) Clone() *LinkIntent {
	cp := *li
	return &cp
}

// RouteState is the lifecycle of a route intent.
type RouteState int

const (
	// RoutePending: declared, not yet fully programmed.
	RoutePending RouteState = iota
	// RouteProgrammed: all per-node entries installed.
	RouteProgrammed
	// RouteRemoved: terminal.
	RouteRemoved
)

// String implements fmt.Stringer.
func (s RouteState) String() string {
	switch s {
	case RoutePending:
		return "pending"
	case RouteProgrammed:
		return "programmed"
	default:
		return "removed"
	}
}

// RouteIntent is the TS-SDN's desire for one source-destination
// route.
type RouteIntent struct {
	// ID is the request ID it serves.
	ID   string
	Path []string
	// Generation increments when the path is reprogrammed.
	Generation                         int
	State                              RouteState
	CreatedAt, ProgrammedAt, RemovedAt float64
}

// Clone returns an independent deep copy (including the path slice).
func (ri *RouteIntent) Clone() *RouteIntent {
	cp := *ri
	cp.Path = append([]string(nil), ri.Path...)
	return &cp
}

// Store tracks all intents and their history.
type Store struct {
	nextID  uint64
	links   map[radio.LinkID]*LinkIntent
	routes  map[string]*RouteIntent
	history []*LinkIntent
	// RouteHistory holds removed route intents.
	RouteHistory []*RouteIntent
}

// NewStore creates an empty intent store.
func NewStore() *Store {
	return &Store{
		links:  map[radio.LinkID]*LinkIntent{},
		routes: map[string]*RouteIntent{},
	}
}

// ActiveLink returns the live intent for a link ID.
func (st *Store) ActiveLink(id radio.LinkID) (*LinkIntent, bool) {
	li, ok := st.links[id]
	return li, ok
}

// ActiveLinks returns live link intents sorted by link ID.
func (st *Store) ActiveLinks() []*LinkIntent {
	out := make([]*LinkIntent, 0, len(st.links))
	for _, li := range st.links {
		out = append(out, li)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Link.A != out[j].Link.A {
			return out[i].Link.A < out[j].Link.A
		}
		return out[i].Link.B < out[j].Link.B
	})
	return out
}

// ActiveRoutes returns live route intents sorted by ID.
func (st *Store) ActiveRoutes() []*RouteIntent {
	out := make([]*RouteIntent, 0, len(st.routes))
	for _, ri := range st.routes {
		out = append(out, ri)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// ActiveRoute returns the live route intent for a request.
func (st *Store) ActiveRoute(id string) (*RouteIntent, bool) {
	ri, ok := st.routes[id]
	return ri, ok
}

// History returns completed link intents in completion order.
func (st *Store) History() []*LinkIntent { return st.history }

// --- State transitions (driven by the actuation layer) --------------

// MarkCommanded moves a pending intent to commanded.
func (st *Store) MarkCommanded(id radio.LinkID, now float64) {
	if li, ok := st.links[id]; ok && li.State == LinkPending {
		li.State = LinkCommanded
		li.CommandedAt = now
		li.Attempts++
	}
}

// MarkInstalling moves a commanded intent to installing (both
// endpoints armed; radios searching).
func (st *Store) MarkInstalling(id radio.LinkID, now float64) {
	if li, ok := st.links[id]; ok && li.State == LinkCommanded {
		li.State = LinkInstalling
		li.InstallingAt = now
	}
}

// MarkRetry returns an installing intent to commanded for another
// attempt.
func (st *Store) MarkRetry(id radio.LinkID, now float64) {
	if li, ok := st.links[id]; ok && !li.State.Terminal() {
		li.State = LinkCommanded
		li.CommandedAt = now
		li.Attempts++
	}
}

// MarkEstablished records link-up.
func (st *Store) MarkEstablished(id radio.LinkID, now float64) {
	if li, ok := st.links[id]; ok && !li.State.Terminal() {
		li.State = LinkEstablished
		if li.EstablishedAt == 0 {
			li.EstablishedAt = now
		}
	}
}

// MarkWithdrawn terminates an intent as planned.
func (st *Store) MarkWithdrawn(id radio.LinkID, now float64) {
	st.finish(id, LinkWithdrawn, "withdrawn", now)
}

// MarkFailed terminates an intent as unplanned.
func (st *Store) MarkFailed(id radio.LinkID, reason string, now float64) {
	st.finish(id, LinkFailed, reason, now)
}

func (st *Store) finish(id radio.LinkID, s LinkState, reason string, now float64) {
	li, ok := st.links[id]
	if !ok || li.State.Terminal() {
		return
	}
	li.State = s
	li.FailReason = reason
	li.EndedAt = now
	delete(st.links, id)
	st.history = append(st.history, li)
}

// MarkRouteProgrammed records full programming.
func (st *Store) MarkRouteProgrammed(id string, now float64) {
	if ri, ok := st.routes[id]; ok && ri.State == RoutePending {
		ri.State = RouteProgrammed
		ri.ProgrammedAt = now
	}
}

// --- Restart adoption (crash-restart reconciliation, §6) -------------

// Adopt re-inserts a journaled link intent after a controller
// restart, preserving its state, timestamps, and attempt count so the
// actuation layer does not re-command work that already happened. The
// ID counter advances past the adopted ID to keep new IDs unique.
func (st *Store) Adopt(li *LinkIntent) {
	if li == nil || li.State.Terminal() {
		return
	}
	st.links[li.Link] = li
	if li.ID > st.nextID {
		st.nextID = li.ID
	}
}

// AdoptRoute re-inserts a journaled route intent after a restart,
// preserving its generation so reprograms stay monotonic against the
// per-node entries that survived on the data plane.
func (st *Store) AdoptRoute(ri *RouteIntent) {
	if ri == nil || ri.State == RouteRemoved {
		return
	}
	st.routes[ri.ID] = ri
}

// --- Reconciliation ---------------------------------------------------

// Actions is the output of one reconcile pass: what the actuation
// layer must do to align reality with the plan.
type Actions struct {
	// EstablishLinks are new link intents to command (state Pending).
	EstablishLinks []*LinkIntent
	// WithdrawLinks are live intents the plan no longer wants — the
	// *predictive teardown* path of Fig. 8.
	WithdrawLinks []*LinkIntent
	// ProgramRoutes are new/changed route intents to push.
	ProgramRoutes []*RouteIntent
	// RemoveRoutes are route intents to withdraw.
	RemoveRoutes []*RouteIntent
}

// Empty reports whether nothing needs doing.
func (a Actions) Empty() bool {
	return len(a.EstablishLinks) == 0 && len(a.WithdrawLinks) == 0 &&
		len(a.ProgramRoutes) == 0 && len(a.RemoveRoutes) == 0
}

// Reconcile diffs a solver plan against the store, creating new
// intents and flagging obsolete ones. It mutates the store (new
// intents appear as Pending; obsolete route intents are removed) but
// leaves link-intent termination to the actuation layer (which must
// first send the withdraw commands).
func (st *Store) Reconcile(plan *solver.Plan, now float64) Actions {
	var acts Actions
	planned := map[radio.LinkID]solver.Chosen{}
	for _, c := range plan.Links {
		planned[c.Report.ID] = c
	}
	// Links to establish: planned but no live intent.
	// Deterministic order: iterate plan.Links (already sorted).
	for _, c := range plan.Links {
		if _, live := st.links[c.Report.ID]; live {
			continue
		}
		st.nextID++
		li := &LinkIntent{
			ID:   st.nextID,
			Link: c.Report.ID,
			XA:   c.Report.XA.ID, XB: c.Report.XB.ID,
			NodeA: c.Report.XA.Node.ID, NodeB: c.Report.XB.Node.ID,
			Channel:   c.Channel,
			Redundant: c.Redundant,
			State:     LinkPending,
			CreatedAt: now,
		}
		st.links[li.Link] = li
		acts.EstablishLinks = append(acts.EstablishLinks, li)
	}
	// Links to withdraw: live intent but not planned.
	for _, li := range st.ActiveLinks() {
		if _, ok := planned[li.Link]; !ok {
			acts.WithdrawLinks = append(acts.WithdrawLinks, li)
		}
	}
	// Routes.
	for _, id := range sortedRouteIDs(plan.Routes) {
		path := plan.Routes[id]
		cur, ok := st.routes[id]
		if ok && samePath(cur.Path, path) {
			continue
		}
		gen := 1
		if ok {
			gen = cur.Generation + 1
			cur.State = RouteRemoved
			cur.RemovedAt = now
			st.RouteHistory = append(st.RouteHistory, cur)
			acts.RemoveRoutes = append(acts.RemoveRoutes, cur)
		}
		ri := &RouteIntent{
			ID: id, Path: append([]string(nil), path...),
			Generation: gen, State: RoutePending, CreatedAt: now,
		}
		st.routes[id] = ri
		acts.ProgramRoutes = append(acts.ProgramRoutes, ri)
	}
	// Routes to remove: live but not in the plan.
	for _, ri := range st.ActiveRoutes() {
		if _, ok := plan.Routes[ri.ID]; !ok {
			ri.State = RouteRemoved
			ri.RemovedAt = now
			delete(st.routes, ri.ID)
			st.RouteHistory = append(st.RouteHistory, ri)
			acts.RemoveRoutes = append(acts.RemoveRoutes, ri)
		}
	}
	return acts
}

func sortedRouteIDs(m map[string][]string) []string {
	out := make([]string, 0, len(m))
	for id := range m {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

func samePath(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
