package intent

import (
	"testing"

	"minkowski/internal/flight"
	"minkowski/internal/geo"
	"minkowski/internal/linkeval"
	"minkowski/internal/platform"
	"minkowski/internal/radio"
	"minkowski/internal/rf"
	"minkowski/internal/solver"
)

// mkReport fabricates a candidate report between two nodes' first
// free transceivers.
func mkReport(a, b *platform.Node, xa, xb int) *linkeval.Report {
	return &linkeval.Report{
		ID: radio.MakeLinkID(a.Xcvrs[xa].ID, b.Xcvrs[xb].ID),
		XA: a.Xcvrs[xa], XB: b.Xcvrs[xb],
		Budget: rf.Budget{BitrateBps: 500e6, MarginDB: 6, SNRdB: 12},
		Class:  rf.Acceptable,
	}
}

func mkNode(id string) *platform.Node {
	b := &flight.Balloon{ID: id, Pos: geo.LLADeg(-1, 37, 18000)}
	return platform.NewBalloonNode(b)
}

func planWith(reports []*linkeval.Report, routes map[string][]string) *solver.Plan {
	p := &solver.Plan{Routes: routes}
	for _, r := range reports {
		p.Links = append(p.Links, solver.Chosen{Report: r, Channel: rf.EBandChannels()[0]})
	}
	if p.Routes == nil {
		p.Routes = map[string][]string{}
	}
	return p
}

func TestReconcileCreatesIntents(t *testing.T) {
	st := NewStore()
	n1, n2 := mkNode("hbal-001"), mkNode("hbal-002")
	plan := planWith([]*linkeval.Report{mkReport(n1, n2, 0, 0)},
		map[string][]string{"r1": {"hbal-002", "hbal-001"}})
	acts := st.Reconcile(plan, 100)
	if len(acts.EstablishLinks) != 1 || len(acts.ProgramRoutes) != 1 {
		t.Fatalf("acts = %+v", acts)
	}
	li := acts.EstablishLinks[0]
	if li.State != LinkPending || li.CreatedAt != 100 {
		t.Errorf("intent = %+v", li)
	}
	if len(st.ActiveLinks()) != 1 || len(st.ActiveRoutes()) != 1 {
		t.Error("store must hold the new intents")
	}
	// Reconciling the same plan again is a no-op.
	acts2 := st.Reconcile(plan, 200)
	if !acts2.Empty() {
		t.Errorf("steady-state reconcile must be empty, got %+v", acts2)
	}
}

func TestReconcileWithdrawsObsoleteLinks(t *testing.T) {
	st := NewStore()
	n1, n2, n3 := mkNode("hbal-001"), mkNode("hbal-002"), mkNode("hbal-003")
	r12 := mkReport(n1, n2, 0, 0)
	r13 := mkReport(n1, n3, 1, 0)
	st.Reconcile(planWith([]*linkeval.Report{r12, r13}, nil), 0)
	// New plan keeps only r12.
	acts := st.Reconcile(planWith([]*linkeval.Report{r12}, nil), 10)
	if len(acts.WithdrawLinks) != 1 || acts.WithdrawLinks[0].Link != r13.ID {
		t.Fatalf("withdraws = %+v", acts.WithdrawLinks)
	}
	// The withdraw action does NOT terminate the intent; actuation
	// does after commanding.
	if _, live := st.ActiveLink(r13.ID); !live {
		t.Error("intent must remain live until actuation confirms withdrawal")
	}
	st.MarkWithdrawn(r13.ID, 12)
	if _, live := st.ActiveLink(r13.ID); live {
		t.Error("MarkWithdrawn must retire the intent")
	}
	if len(st.History()) != 1 || st.History()[0].State != LinkWithdrawn {
		t.Error("history must record the withdrawal")
	}
}

func TestLinkLifecycleTimestamps(t *testing.T) {
	st := NewStore()
	n1, n2 := mkNode("hbal-001"), mkNode("hbal-002")
	rep := mkReport(n1, n2, 0, 0)
	st.Reconcile(planWith([]*linkeval.Report{rep}, nil), 5)
	id := rep.ID
	st.MarkCommanded(id, 10)
	st.MarkInstalling(id, 20)
	st.MarkEstablished(id, 80)
	li, _ := st.ActiveLink(id)
	if li.State != LinkEstablished {
		t.Fatalf("state = %v", li.State)
	}
	if li.CommandedAt != 10 || li.InstallingAt != 20 || li.EstablishedAt != 80 {
		t.Errorf("timestamps = %+v", li)
	}
	if li.Attempts != 1 {
		t.Errorf("attempts = %d", li.Attempts)
	}
	st.MarkFailed(id, "rf-fade", 500)
	if len(st.History()) != 1 {
		t.Fatal("failure must move intent to history")
	}
	h := st.History()[0]
	if h.State != LinkFailed || h.FailReason != "rf-fade" || h.EndedAt != 500 {
		t.Errorf("history = %+v", h)
	}
}

func TestRetryIncrementsAttempts(t *testing.T) {
	st := NewStore()
	n1, n2 := mkNode("hbal-001"), mkNode("hbal-002")
	rep := mkReport(n1, n2, 0, 0)
	st.Reconcile(planWith([]*linkeval.Report{rep}, nil), 0)
	st.MarkCommanded(rep.ID, 1)
	st.MarkInstalling(rep.ID, 2)
	st.MarkRetry(rep.ID, 60)
	st.MarkInstalling(rep.ID, 61)
	li, _ := st.ActiveLink(rep.ID)
	if li.Attempts != 2 {
		t.Errorf("attempts = %d, want 2", li.Attempts)
	}
}

func TestTerminalStatesAreFinal(t *testing.T) {
	st := NewStore()
	n1, n2 := mkNode("hbal-001"), mkNode("hbal-002")
	rep := mkReport(n1, n2, 0, 0)
	st.Reconcile(planWith([]*linkeval.Report{rep}, nil), 0)
	st.MarkWithdrawn(rep.ID, 5)
	// Further marks must be no-ops (intent is in history).
	st.MarkEstablished(rep.ID, 6)
	st.MarkFailed(rep.ID, "late", 7)
	if len(st.History()) != 1 {
		t.Errorf("history = %d entries", len(st.History()))
	}
	if st.History()[0].State != LinkWithdrawn {
		t.Error("terminal state must not change")
	}
}

func TestRouteReprogramOnPathChange(t *testing.T) {
	st := NewStore()
	routes1 := map[string][]string{"r1": {"b2", "b1", "gs"}}
	st.Reconcile(planWith(nil, routes1), 0)
	st.MarkRouteProgrammed("r1", 1)
	// Same path: no action.
	acts := st.Reconcile(planWith(nil, routes1), 10)
	if !acts.Empty() {
		t.Fatal("same path must be a no-op")
	}
	// Changed path: remove old gen, program new.
	routes2 := map[string][]string{"r1": {"b2", "b3", "gs"}}
	acts = st.Reconcile(planWith(nil, routes2), 20)
	if len(acts.RemoveRoutes) != 1 || len(acts.ProgramRoutes) != 1 {
		t.Fatalf("acts = %+v", acts)
	}
	if acts.ProgramRoutes[0].Generation != 2 {
		t.Errorf("generation = %d, want 2", acts.ProgramRoutes[0].Generation)
	}
	if len(st.RouteHistory) != 1 || st.RouteHistory[0].State != RouteRemoved {
		t.Error("old generation must be in history")
	}
}

func TestRouteRemovedWhenGone(t *testing.T) {
	st := NewStore()
	st.Reconcile(planWith(nil, map[string][]string{"r1": {"b1", "gs"}}), 0)
	acts := st.Reconcile(planWith(nil, nil), 10)
	if len(acts.RemoveRoutes) != 1 {
		t.Fatalf("acts = %+v", acts)
	}
	if len(st.ActiveRoutes()) != 0 {
		t.Error("removed route still active")
	}
}

func TestReconcileDeterministicOrder(t *testing.T) {
	mk := func() Actions {
		st := NewStore()
		n1, n2, n3 := mkNode("hbal-001"), mkNode("hbal-002"), mkNode("hbal-003")
		reports := []*linkeval.Report{
			mkReport(n1, n2, 0, 0), mkReport(n2, n3, 1, 0), mkReport(n1, n3, 1, 1),
		}
		return st.Reconcile(planWith(reports, map[string][]string{
			"a": {"hbal-001", "hbal-002"}, "b": {"hbal-002", "hbal-003"},
		}), 0)
	}
	a1, a2 := mk(), mk()
	for i := range a1.EstablishLinks {
		if a1.EstablishLinks[i].Link != a2.EstablishLinks[i].Link {
			t.Fatal("establish order must be deterministic")
		}
	}
	for i := range a1.ProgramRoutes {
		if a1.ProgramRoutes[i].ID != a2.ProgramRoutes[i].ID {
			t.Fatal("route order must be deterministic")
		}
	}
}
