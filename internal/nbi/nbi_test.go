package nbi

import (
	"testing"

	"minkowski/internal/dataplane"
)

func classifier(mbps float64) dataplane.FlowClassifier {
	return dataplane.FlowClassifier{
		SrcPrefix: "2001:db8:1::/64", DstPrefix: "2001:db8:2::/64",
		MinBitrateBps: mbps * 1e6,
	}
}

func TestBackhaulLifecycle(t *testing.T) {
	s := NewService()
	id := s.RequestBackhaul("hbal-001", classifier(50), "rg-1")
	if id != "backhaul/hbal-001" {
		t.Errorf("id = %q", id)
	}
	if len(s.ActiveRequests()) != 1 {
		t.Fatal("request not active")
	}
	reqs := s.SolverRequests()
	if len(reqs) != 1 || reqs[0].Src != "hbal-001" || reqs[0].MinBitrateBps != 50e6 {
		t.Errorf("solver requests = %+v", reqs)
	}
	s.ReleaseBackhaul("hbal-001")
	if len(s.ActiveRequests()) != 0 {
		t.Error("released request still active")
	}
	// Re-request reactivates with new parameters.
	s.RequestBackhaul("hbal-001", classifier(100), "rg-1")
	reqs = s.SolverRequests()
	if len(reqs) != 1 || reqs[0].MinBitrateBps != 100e6 {
		t.Errorf("reactivated request = %+v", reqs)
	}
}

func TestSolverRequestsSorted(t *testing.T) {
	s := NewService()
	s.RequestBackhaul("hbal-009", classifier(10), "")
	s.RequestBackhaul("hbal-001", classifier(10), "")
	reqs := s.SolverRequests()
	if len(reqs) != 2 || reqs[0].Src != "hbal-001" {
		t.Errorf("requests not sorted: %+v", reqs)
	}
}

func TestOpportunisticDrainWaitsForQuiet(t *testing.T) {
	s := NewService()
	id := s.RequestDrain("hbal-001", DrainOpportunistic, 0, "nightly software update")
	busy := func(node string) []string { return []string{"r1"} }
	quiet := func(node string) []string { return nil }

	s.Tick(1, busy)
	if s.Drained("hbal-001") {
		t.Error("node with traffic must not latch")
	}
	// Opportunistic drains never force exclusion while draining.
	if s.SolverExclusions()["hbal-001"] {
		t.Error("opportunistic drain must not exclude a busy node")
	}
	s.Tick(2, quiet)
	if !s.Drained("hbal-001") {
		t.Error("quiet node must latch")
	}
	if !s.SolverExclusions()["hbal-001"] {
		t.Error("latched node must be excluded")
	}
	if !s.ReleaseDrain(id) {
		t.Error("release failed")
	}
	if s.Drained("hbal-001") || s.SolverExclusions()["hbal-001"] {
		t.Error("released drain must clear exclusion")
	}
	if s.ReleaseDrain(id) {
		t.Error("double release must fail")
	}
}

func TestForceDrainExcludesImmediately(t *testing.T) {
	s := NewService()
	s.RequestDrain("hbal-002", DrainForce, 0, "troubleshooting")
	busy := func(node string) []string { return []string{"r1"} }
	s.Tick(1, busy)
	if !s.SolverExclusions()["hbal-002"] {
		t.Error("force drain must exclude while still draining")
	}
	if s.Drained("hbal-002") {
		t.Error("force drain with traffic must not be latched yet")
	}
	quiet := func(node string) []string { return nil }
	s.Tick(2, quiet)
	if !s.Drained("hbal-002") {
		t.Error("force drain must latch once traffic is gone")
	}
}

func TestDeterDrainExcludes(t *testing.T) {
	s := NewService()
	s.RequestDrain("hbal-003", DrainDeter, 0, "calibration")
	s.Tick(1, func(string) []string { return []string{"r9"} })
	if !s.SolverExclusions()["hbal-003"] {
		t.Error("deter drain must steer the solver away")
	}
}

func TestDrainEnactTime(t *testing.T) {
	s := NewService()
	s.RequestDrain("hbal-004", DrainForce, 100, "scheduled maintenance")
	quiet := func(string) []string { return nil }
	s.Tick(50, quiet)
	if len(s.SolverExclusions()) != 0 {
		t.Error("drain must not act before its enactment time")
	}
	s.Tick(101, quiet)
	s.Tick(102, quiet)
	if !s.Drained("hbal-004") {
		t.Error("drain must act after its enactment time")
	}
}

func TestMultipleDrainsSameNode(t *testing.T) {
	s := NewService()
	id1 := s.RequestDrain("hbal-005", DrainForce, 0, "a")
	id2 := s.RequestDrain("hbal-005", DrainForce, 0, "b")
	if id1 == id2 {
		t.Error("drain IDs must be unique")
	}
	quiet := func(string) []string { return nil }
	s.Tick(1, quiet)
	s.Tick(2, quiet)
	s.ReleaseDrain(id1)
	if !s.Drained("hbal-005") {
		t.Error("second drain must keep the node drained")
	}
	s.ReleaseDrain(id2)
	if s.Drained("hbal-005") {
		t.Error("all drains released — node must return to service")
	}
}
