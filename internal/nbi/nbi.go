// Package nbi implements the TS-SDN's northbound interface (Appendix
// C): the gRPC service surface other datacenter systems — LTE service
// management, the FMS, production engineering — used to provision the
// network.
//
// Two concepts dominate: backhaul *service requests* ("flow
// classifier" matching rules, required bandwidth, desired path
// redundancy) that become the solver's connectivity requests, and
// *administrative drains* that temporarily exclude nodes from the
// data plane for maintenance, low-power transitions, and software
// updates.
package nbi

import (
	"fmt"
	"sort"

	"minkowski/internal/dataplane"
	"minkowski/internal/solver"
)

// BackhaulRequest is one service request for transit across the
// network.
type BackhaulRequest struct {
	// ID names the request.
	ID string
	// Node is the balloon whose eNodeB needs backhaul.
	Node string
	// Classifier matches the traffic.
	Classifier dataplane.FlowClassifier
	// RedundancyGroup, when set, asks for disjoint paths across
	// requests sharing the tag (combined with SCTP multi-homing and
	// S1-Flex in production).
	RedundancyGroup string
	// Active requests feed the solver; deactivated ones linger for
	// history.
	Active bool
}

// DrainPolicy selects how aggressively traffic leaves a draining
// node.
type DrainPolicy int

const (
	// DrainOpportunistic passively waits for the node to naturally
	// lose all traffic, then latches ("we could expect every node to
	// become fully disconnected from the mesh every night").
	DrainOpportunistic DrainPolicy = iota
	// DrainDeter biases the solver away from the node until it
	// drains.
	DrainDeter
	// DrainForce immediately reroutes traffic off the node.
	DrainForce
)

// String implements fmt.Stringer.
func (p DrainPolicy) String() string {
	switch p {
	case DrainOpportunistic:
		return "opportunistic"
	case DrainDeter:
		return "deter"
	default:
		return "force"
	}
}

// DrainState is a drain request's lifecycle.
type DrainState int

const (
	// DrainRequested: registered, not yet in effect.
	DrainRequested DrainState = iota
	// DrainDraining: in effect; traffic leaving.
	DrainDraining
	// DrainLatched: the node is drained; maintenance may proceed.
	DrainLatched
	// DrainReleased: terminal.
	DrainReleased
)

// String implements fmt.Stringer.
func (s DrainState) String() string {
	switch s {
	case DrainRequested:
		return "requested"
	case DrainDraining:
		return "draining"
	case DrainLatched:
		return "latched"
	default:
		return "released"
	}
}

// Drain is one administrative drain request.
type Drain struct {
	ID     string
	Node   string
	Policy DrainPolicy
	// EnactAt delays the drain (0 = immediately).
	EnactAt float64
	State   DrainState
	// Reason is free-form operator/automation context.
	Reason string
}

// Service is the NBI registry.
type Service struct {
	requests map[string]*BackhaulRequest
	drains   map[string]*Drain
	nextID   int
}

// NewService creates an empty NBI.
func NewService() *Service {
	return &Service{
		requests: map[string]*BackhaulRequest{},
		drains:   map[string]*Drain{},
	}
}

// RequestBackhaul registers (or reactivates) a backhaul request for a
// node. Returns the request ID.
func (s *Service) RequestBackhaul(node string, classifier dataplane.FlowClassifier, redundancyGroup string) string {
	id := "backhaul/" + node
	if r, ok := s.requests[id]; ok {
		r.Active = true
		r.Classifier = classifier
		r.RedundancyGroup = redundancyGroup
		return id
	}
	s.requests[id] = &BackhaulRequest{
		ID: id, Node: node, Classifier: classifier,
		RedundancyGroup: redundancyGroup, Active: true,
	}
	return id
}

// ReleaseBackhaul deactivates a node's backhaul (e.g. the LTE stack
// detected the balloon left the serving region).
func (s *Service) ReleaseBackhaul(node string) {
	if r, ok := s.requests["backhaul/"+node]; ok {
		r.Active = false
	}
}

// ActiveRequests returns active backhaul requests sorted by ID.
func (s *Service) ActiveRequests() []*BackhaulRequest {
	var out []*BackhaulRequest
	for _, r := range s.requests {
		if r.Active {
			out = append(out, r)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// SolverRequests converts active backhaul requests into solver
// connectivity requests (Dst empty = any gateway).
func (s *Service) SolverRequests() []solver.Request {
	var out []solver.Request
	for _, r := range s.ActiveRequests() {
		out = append(out, solver.Request{
			ID: r.ID, Src: r.Node, MinBitrateBps: r.Classifier.MinBitrateBps,
		})
	}
	return out
}

// RequestDrain registers a drain.
func (s *Service) RequestDrain(node string, policy DrainPolicy, enactAt float64, reason string) string {
	s.nextID++
	id := fmt.Sprintf("drain/%s/%d", node, s.nextID)
	s.drains[id] = &Drain{
		ID: id, Node: node, Policy: policy,
		EnactAt: enactAt, State: DrainRequested, Reason: reason,
	}
	return id
}

// ReleaseDrain ends a drain, returning the node to service.
func (s *Service) ReleaseDrain(id string) bool {
	d, ok := s.drains[id]
	if !ok || d.State == DrainReleased {
		return false
	}
	d.State = DrainReleased
	return true
}

// Drains returns all drains sorted by ID.
func (s *Service) Drains() []*Drain {
	out := make([]*Drain, 0, len(s.drains))
	for _, d := range s.drains {
		out = append(out, d)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Tick advances drain state machines at time now. traffic reports
// the route IDs currently traversing a node (from the data plane
// state).
func (s *Service) Tick(now float64, traffic func(node string) []string) {
	for _, d := range s.Drains() {
		switch d.State {
		case DrainRequested:
			if now >= d.EnactAt {
				d.State = DrainDraining
			}
		case DrainDraining:
			switch d.Policy {
			case DrainOpportunistic, DrainDeter:
				// Latch when the node naturally carries nothing.
				if len(traffic(d.Node)) == 0 {
					d.State = DrainLatched
				}
			case DrainForce:
				// The solver exclusion reroutes traffic; latch as
				// soon as it's gone (typically next solve cycle).
				if len(traffic(d.Node)) == 0 {
					d.State = DrainLatched
				}
			}
		}
	}
}

// SolverExclusions returns the nodes the solver must avoid: forced
// drains exclude immediately on draining; deter and opportunistic
// drains exclude only once latched (opportunistic never pushes
// traffic off — it waits; deter biases; we approximate deter as
// exclusion-when-latched plus solver cost bias upstream).
func (s *Service) SolverExclusions() map[string]bool {
	out := map[string]bool{}
	for _, d := range s.drains {
		switch d.State {
		case DrainDraining:
			if d.Policy == DrainForce || d.Policy == DrainDeter {
				out[d.Node] = true
			}
		case DrainLatched:
			out[d.Node] = true
		}
	}
	return out
}

// Drained reports whether a node is safe for maintenance.
func (s *Service) Drained(node string) bool {
	for _, d := range s.drains {
		if d.Node == node && d.State == DrainLatched {
			return true
		}
	}
	return false
}
