// Package itu implements the ITU-R propagation models the paper's Link
// Evaluator relied on (§3.1, refs [27–29]):
//
//   - ITU-R P.676: attenuation by atmospheric gases (oxygen and water
//     vapour), via the closed-form Annex 2 approximations.
//   - ITU-R P.838: specific attenuation due to rain, γ_R = k·R^α with
//     frequency-dependent coefficients.
//   - ITU-R P.840: attenuation due to clouds and fog, using the
//     double-Debye dielectric model for liquid water.
//
// The package also provides the "regional-seasonal" statistical
// backstop the paper describes: when no fresher weather data is
// available, the solver falls back to climatological attenuation
// estimates derived from these models.
//
// Frequencies are in GHz, attenuation in dB (or dB/km for specific
// attenuation), rain rates in mm/h, temperatures in kelvin, pressure in
// hPa, and water content in g/m³ throughout.
package itu

import (
	"fmt"
	"math"
	"sort"
)

// Polarization selects the rain-coefficient set in P.838. E band links
// in this system are modelled as horizontally polarized; circular
// polarization averages the two.
type Polarization int

const (
	// Horizontal polarization.
	Horizontal Polarization = iota
	// Vertical polarization.
	Vertical
	// Circular polarization (average of H and V coefficients).
	Circular
)

// String implements fmt.Stringer.
func (p Polarization) String() string {
	switch p {
	case Horizontal:
		return "H"
	case Vertical:
		return "V"
	case Circular:
		return "C"
	default:
		return fmt.Sprintf("Polarization(%d)", int(p))
	}
}

// --- ITU-R P.676: gaseous attenuation ------------------------------

// Standard reference atmosphere at sea level used by the Annex 2
// closed forms.
const (
	refPressureHPa = 1013.25
	refTempK       = 288.15
)

// GaseousSpecific returns the specific attenuation (dB/km) due to dry
// air (oxygen) plus water vapour at frequency fGHz, for the given
// pressure (hPa), temperature (K) and water-vapour density rho (g/m³).
// It implements the ITU-R P.676 Annex 2 approximation, valid from 1 to
// 350 GHz away from the 60 GHz oxygen complex (E band at 71–86 GHz is
// squarely in the valid region).
func GaseousSpecific(fGHz, pressureHPa, tempK, rho float64) float64 {
	return OxygenSpecific(fGHz, pressureHPa, tempK) + WaterVapourSpecific(fGHz, pressureHPa, tempK, rho)
}

// OxygenSpecific returns the dry-air specific attenuation in dB/km.
func OxygenSpecific(fGHz, pressureHPa, tempK float64) float64 {
	if fGHz <= 0 {
		return 0
	}
	rp := pressureHPa / refPressureHPa
	rt := refTempK / tempK
	f := fGHz
	var g float64
	switch {
	case f < 57:
		g = (7.27*rt/(f*f+0.351*rp*rp*rt*rt) +
			7.5/((f-57)*(f-57)+2.44*rp*rp*math.Pow(rt, 5))) *
			f * f * rp * rp * rt * rt * 1e-3
	case f <= 63:
		// Inside the 60 GHz oxygen complex: the Annex 2 closed form is
		// not valid; interpolate linearly between the 57 and 63 GHz
		// branch values. No link in this system operates here.
		g57 := OxygenSpecific(56.99, pressureHPa, tempK)
		g63 := OxygenSpecific(63.01, pressureHPa, tempK)
		g = g57 + (g63-g57)*(f-57)/6
	default: // 63 < f <= 350
		g = (2e-4*math.Pow(rt, 1.5)*(1-1.2e-5*math.Pow(f, 1.5)) +
			4/((f-63)*(f-63)+1.5*rp*rp*math.Pow(rt, 5)) +
			0.28*rt*rt/((f-118.75)*(f-118.75)+2.84*rp*rp*rt*rt)) *
			f * f * rp * rp * math.Pow(rt, 2) * 1e-3
	}
	if g < 0 {
		g = 0
	}
	return g
}

// WaterVapourSpecific returns the water-vapour specific attenuation in
// dB/km for vapour density rho (g/m³).
func WaterVapourSpecific(fGHz, pressureHPa, tempK, rho float64) float64 {
	if fGHz <= 0 || rho <= 0 {
		return 0
	}
	rp := pressureHPa / refPressureHPa
	rt := refTempK / tempK
	f := fGHz
	g := (3.27e-2*rt +
		1.67e-3*rho*rt*rt*rt*rt*rt*rt*rt/rp +
		7.7e-4*math.Pow(f, 0.5) +
		3.79/((f-22.235)*(f-22.235)+9.81*rp*rp*rt) +
		11.73*rt/((f-183.31)*(f-183.31)+11.85*rp*rp*rt) +
		4.01*rt/((f-325.153)*(f-325.153)+10.44*rp*rp*rt)) *
		f * f * rho * rp * rt * 1e-4
	if g < 0 {
		g = 0
	}
	return g
}

// Equivalent heights for integrated zenith attenuation (P.676 §2.2
// style; used by the cheap zenith-path helper below).
const (
	oxygenScaleHeightKm = 6.0
	vapourScaleHeightKm = 2.0
)

// ZenithGaseous returns the approximate total zenith attenuation (dB)
// through the whole atmosphere from a start altitude (km) at sea-level
// conditions, using exponential equivalent heights. The Link Evaluator
// uses per-sample integration for slant paths; this helper provides a
// quick climatological bound.
func ZenithGaseous(fGHz, startAltKm, rhoSeaLevel float64) float64 {
	gOx := OxygenSpecific(fGHz, refPressureHPa, refTempK)
	gWv := WaterVapourSpecific(fGHz, refPressureHPa, refTempK, rhoSeaLevel)
	return gOx*oxygenScaleHeightKm*math.Exp(-startAltKm/oxygenScaleHeightKm) +
		gWv*vapourScaleHeightKm*math.Exp(-startAltKm/vapourScaleHeightKm)
}

// AtmosphereAt returns a standard-atmosphere (pressure hPa,
// temperature K, water-vapour density g/m³) triple at the given
// altitude in meters, for a sea-level vapour density rho0. The
// pressure uses the barometric formula with a 7 km scale height and
// the temperature the ISA lapse rate capped at the tropopause.
func AtmosphereAt(altM, rho0 float64) (pressureHPa, tempK, rho float64) {
	altKm := altM / 1000
	pressureHPa = refPressureHPa * math.Exp(-altKm/7.0)
	tempK = refTempK - 6.5*math.Min(altKm, 11)
	if altKm > 11 {
		// Isothermal lower stratosphere.
		tempK = refTempK - 6.5*11
	}
	rho = rho0 * math.Exp(-altKm/vapourScaleHeightKm)
	return pressureHPa, tempK, rho
}

// --- ITU-R P.838: rain attenuation ---------------------------------

// p838Row holds the regression coefficients k and α for one frequency.
type p838Row struct {
	f      float64
	kH, aH float64
	kV, aV float64
}

// p838Table is the ITU-R P.838-3 coefficient table (subset spanning
// 1–100 GHz, which covers every band in this system including E band).
var p838Table = []p838Row{
	{1, 0.0000259, 0.9691, 0.0000308, 0.8592},
	{2, 0.0000847, 1.0664, 0.0000998, 0.9490},
	{4, 0.0001071, 1.6009, 0.0002461, 1.2476},
	{6, 0.0007056, 1.5900, 0.0004878, 1.5728},
	{8, 0.004115, 1.3905, 0.003450, 1.3797},
	{10, 0.01217, 1.2571, 0.01129, 1.2156},
	{12, 0.02386, 1.1825, 0.02455, 1.1216},
	{15, 0.04481, 1.1233, 0.05008, 1.0440},
	{20, 0.09164, 1.0568, 0.09611, 0.9847},
	{25, 0.1571, 0.9991, 0.1533, 0.9491},
	{30, 0.2403, 0.9485, 0.2291, 0.9129},
	{35, 0.3374, 0.9047, 0.3224, 0.8761},
	{40, 0.4431, 0.8673, 0.4274, 0.8421},
	{45, 0.5521, 0.8355, 0.5375, 0.8123},
	{50, 0.6600, 0.8084, 0.6472, 0.7871},
	{60, 0.8606, 0.7656, 0.8515, 0.7486},
	{70, 1.0315, 0.7345, 1.0253, 0.7215},
	{80, 1.1704, 0.7115, 1.1668, 0.7021},
	{90, 1.2807, 0.6944, 1.2795, 0.6876},
	{100, 1.3671, 0.6815, 1.3680, 0.6765},
}

// RainCoefficients returns the P.838 k and α coefficients for the
// given frequency and polarization, interpolating log(k) and α against
// log(f) between table rows. Frequencies outside [1, 100] GHz are
// clamped to the nearest table edge.
func RainCoefficients(fGHz float64, pol Polarization) (k, alpha float64) {
	if fGHz <= p838Table[0].f {
		r := p838Table[0]
		return pickPol(r, pol)
	}
	last := p838Table[len(p838Table)-1]
	if fGHz >= last.f {
		return pickPol(last, pol)
	}
	i := sort.Search(len(p838Table), func(i int) bool { return p838Table[i].f >= fGHz })
	lo, hi := p838Table[i-1], p838Table[i]
	t := (math.Log(fGHz) - math.Log(lo.f)) / (math.Log(hi.f) - math.Log(lo.f))
	kLo, aLo := pickPol(lo, pol)
	kHi, aHi := pickPol(hi, pol)
	k = math.Exp(math.Log(kLo) + t*(math.Log(kHi)-math.Log(kLo)))
	alpha = aLo + t*(aHi-aLo)
	return k, alpha
}

func pickPol(r p838Row, pol Polarization) (k, alpha float64) {
	switch pol {
	case Vertical:
		return r.kV, r.aV
	case Circular:
		// P.838 circular combination with 45° tilt reduces to the
		// arithmetic mean of kH/kV and the k-weighted mean of α.
		k = (r.kH + r.kV) / 2
		alpha = (r.kH*r.aH + r.kV*r.aV) / (r.kH + r.kV)
		return k, alpha
	default:
		return r.kH, r.aH
	}
}

// RainSpecific returns the specific attenuation in dB/km for rain of
// the given rate (mm/h) at the given frequency and polarization,
// γ_R = k·R^α.
func RainSpecific(fGHz, rainRate float64, pol Polarization) float64 {
	if rainRate <= 0 {
		return 0
	}
	k, a := RainCoefficients(fGHz, pol)
	return k * math.Pow(rainRate, a)
}

// --- ITU-R P.840: cloud and fog attenuation ------------------------

// CloudSpecificCoefficient returns K_l, the cloud liquid water
// specific attenuation coefficient in (dB/km)/(g/m³) at frequency
// fGHz and temperature tempK, using the double-Debye dielectric model
// of ITU-R P.840.
func CloudSpecificCoefficient(fGHz, tempK float64) float64 {
	if fGHz <= 0 {
		return 0
	}
	theta := 300 / tempK
	e0 := 77.66 + 103.3*(theta-1)
	e1 := 0.0671 * e0
	e2 := 3.52
	fp := 20.20 - 146*(theta-1) + 316*(theta-1)*(theta-1) // GHz, principal relaxation
	fs := 39.8 * fp                                       // GHz, secondary relaxation
	f := fGHz
	eImag := f*(e0-e1)/(fp*(1+(f/fp)*(f/fp))) + f*(e1-e2)/(fs*(1+(f/fs)*(f/fs)))
	eReal := (e0-e1)/(1+(f/fp)*(f/fp)) + (e1-e2)/(1+(f/fs)*(f/fs)) + e2
	eta := (2 + eReal) / eImag
	return 0.819 * f / (eImag * (1 + eta*eta))
}

// CloudSpecific returns the specific attenuation in dB/km for a cloud
// or fog with liquid water content lwc (g/m³) at frequency fGHz and
// temperature tempK.
func CloudSpecific(fGHz, tempK, lwc float64) float64 {
	if lwc <= 0 {
		return 0
	}
	return CloudSpecificCoefficient(fGHz, tempK) * lwc
}

// --- Regional-seasonal backstop model -------------------------------

// Season indexes the wet/dry seasonality of the tropical service
// region. The paper's subtropical Kenya region has two rainy seasons
// (the "long rains" around March–May and "short rains" around
// October–December).
type Season int

const (
	// DrySeason has low climatological rain probability.
	DrySeason Season = iota
	// ShortRains is the October–December wet season.
	ShortRains
	// LongRains is the March–May wet season with the heaviest rain.
	LongRains
)

// SeasonForMonth maps a 1-based month to the east-African season used
// by the backstop model.
func SeasonForMonth(month int) Season {
	switch {
	case month >= 3 && month <= 5:
		return LongRains
	case month >= 10 && month <= 12:
		return ShortRains
	default:
		return DrySeason
	}
}

// RegionalModel is the climatological backstop of §3.1/§5: when no
// gauge or forecast data is available, it supplies pessimistic
// (exceedance-based) rain-rate estimates by season.
type RegionalModel struct {
	// MeanRainRate is the season's climatological mean rain rate over
	// raining periods, mm/h.
	MeanRainRate [3]float64
	// RainProbability is the fraction of time it rains at all.
	RainProbability [3]float64
	// ExceededRate001 is the rain rate exceeded 0.01% of the time
	// (the classic ITU link-budget design point), mm/h.
	ExceededRate001 [3]float64
	// Pessimism is the deliberate margin (dB) the paper describes
	// adding: Loon "intentionally selected a pessimistic level from
	// the ITU-R regional seasonal average model", visible as the
	// +4.3 dB shift in Fig. 10.
	Pessimism float64
}

// DefaultRegionalModel returns climatology tuned for the paper's
// equatorial East-African service region.
func DefaultRegionalModel() *RegionalModel {
	return &RegionalModel{
		MeanRainRate:    [3]float64{1.5, 5, 8},
		RainProbability: [3]float64{0.02, 0.08, 0.12},
		ExceededRate001: [3]float64{35, 63, 80},
		Pessimism:       4.3,
	}
}

// DesignRainRate returns the rain rate (mm/h) the backstop model
// plans around for the given season: the climatological mean scaled
// toward the exceedance tail by the model's pessimism.
func (m *RegionalModel) DesignRainRate(s Season) float64 {
	mean := m.MeanRainRate[s]
	p := m.RainProbability[s]
	// Expected rate is mean·P(rain); pessimism pulls the estimate up
	// toward the conditional mean.
	return mean*p + mean*(1-p)*0.25
}

// BackstopAttenuation returns the climatological planning attenuation
// (dB) over a path of pathKm kilometers below the freezing level, at
// frequency fGHz in the given season, including the model's deliberate
// pessimism margin. This is what the Link Evaluator uses when neither
// gauges nor forecasts cover a path.
func (m *RegionalModel) BackstopAttenuation(fGHz, pathKm float64, s Season, pol Polarization) float64 {
	if pathKm <= 0 {
		return 0
	}
	rate := m.DesignRainRate(s)
	att := RainSpecific(fGHz, rate, pol) * pathKm
	return att + m.Pessimism
}
