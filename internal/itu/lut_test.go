package itu

import (
	"math"
	"testing"
)

// TestAttenLUTGaseousErrorBound holds the interpolated gaseous table
// to the documented bound: relative error under 10⁻³ against the
// exact P.676 closed form at arbitrary (non-knot) altitudes, and an
// exact fallback above the table top.
func TestAttenLUTGaseousErrorBound(t *testing.T) {
	for _, fGHz := range []float64{72, 82} {
		l := NewAttenLUT(fGHz, 7.5, Horizontal)
		for alt := 0.0; alt <= 29000; alt += 37.3 {
			pr, tk, rho := AtmosphereAt(alt, 7.5)
			exact := GaseousSpecific(fGHz, pr, tk, rho)
			got := l.GaseousAt(alt)
			if exact == 0 {
				continue
			}
			if rel := math.Abs(got-exact) / exact; rel > 1e-3 {
				t.Fatalf("f=%v alt=%v: gaseous rel error %v > 1e-3 (lut %v exact %v)",
					fGHz, alt, rel, got, exact)
			}
		}
		// Above the table the exact form must be served verbatim.
		alt := 31000.0
		pr, tk, rho := AtmosphereAt(alt, 7.5)
		if got, exact := l.GaseousAt(alt), GaseousSpecific(fGHz, pr, tk, rho); got != exact {
			t.Errorf("above-table altitude must use the exact form: %v vs %v", got, exact)
		}
	}
}

// TestAttenLUTCloudErrorBound: same bound for the interpolated cloud
// coefficient, across altitudes and liquid water contents.
func TestAttenLUTCloudErrorBound(t *testing.T) {
	l := NewAttenLUT(72, 7.5, Horizontal)
	for alt := 0.0; alt <= 12000; alt += 111.1 {
		_, tk, _ := AtmosphereAt(alt, 7.5)
		for _, lwc := range []float64{0.05, 0.5, 1.5} {
			exact := CloudSpecific(72, tk, lwc)
			got := l.CloudSpecificAt(alt, lwc)
			if exact == 0 {
				continue
			}
			if rel := math.Abs(got-exact) / exact; rel > 1e-3 {
				t.Fatalf("alt=%v lwc=%v: cloud rel error %v > 1e-3", alt, lwc, rel)
			}
		}
	}
	if l.CloudSpecificAt(2000, 0) != 0 {
		t.Error("zero liquid water content must cost zero attenuation")
	}
}

// TestAttenLUTRainBitIdentical: rain memoizes only the P.838
// coefficient walk; the k·R^α evaluation stays exact, so the LUT must
// be bit-identical to RainSpecific — the property the evaluator's
// brute-force equivalence guarantee rests on.
func TestAttenLUTRainBitIdentical(t *testing.T) {
	for _, pol := range []Polarization{Horizontal, Vertical} {
		l := NewAttenLUT(72, 7.5, pol)
		for rate := 0.01; rate < 150; rate *= 1.7 {
			if got, exact := l.RainSpecificAt(rate), RainSpecific(72, rate, pol); got != exact {
				t.Fatalf("pol=%v rate=%v: LUT %v != exact %v (must be bit-identical)",
					pol, rate, got, exact)
			}
		}
		if l.RainSpecificAt(0) != 0 || l.RainSpecificAt(-1) != 0 {
			t.Error("non-positive rain rates must cost zero")
		}
	}
}

// TestLUTForCaching: the package cache must return the same table for
// the same key and distinct tables for distinct keys.
func TestLUTForCaching(t *testing.T) {
	a := LUTFor(72, 7.5, Horizontal)
	b := LUTFor(72, 7.5, Horizontal)
	if a != b {
		t.Error("identical keys must share one table")
	}
	if c := LUTFor(82, 7.5, Horizontal); c == a {
		t.Error("distinct frequencies must not share a table")
	}
}
