package itu

import (
	"math"
	"testing"
	"testing/quick"
)

func TestOxygenSpecificSeaLevel(t *testing.T) {
	// Published P.676 values at sea level, 15°C: roughly 0.007 dB/km
	// near 1 GHz, ~15 dB/km at the 60 GHz complex shoulder, and a few
	// tenths of dB/km in E band.
	cases := []struct {
		f        float64
		min, max float64
	}{
		{1, 0.001, 0.02},
		{10, 0.005, 0.02},
		{28, 0.01, 0.1},
		{73, 0.05, 0.8},
		{83, 0.03, 0.8},
	}
	for _, c := range cases {
		got := OxygenSpecific(c.f, 1013.25, 288.15)
		if got < c.min || got > c.max {
			t.Errorf("OxygenSpecific(%v GHz) = %v dB/km, want in [%v, %v]", c.f, got, c.min, c.max)
		}
	}
}

func TestOxygenComplexContinuity(t *testing.T) {
	// The interpolated 57–63 GHz branch should join the two closed
	// forms without discontinuities.
	g56 := OxygenSpecific(56.9, 1013.25, 288.15)
	g57 := OxygenSpecific(57.1, 1013.25, 288.15)
	g63 := OxygenSpecific(63.1, 1013.25, 288.15)
	g62 := OxygenSpecific(62.9, 1013.25, 288.15)
	if math.Abs(g57-g56) > g56 {
		t.Errorf("discontinuity at 57 GHz: %v vs %v", g56, g57)
	}
	if math.Abs(g63-g62) > g63 {
		t.Errorf("discontinuity at 63 GHz: %v vs %v", g62, g63)
	}
}

func TestWaterVapourPeaks(t *testing.T) {
	// The 22.2 GHz water line should show a local enhancement relative
	// to 15 GHz and 35 GHz at the same vapour density.
	rho := 7.5
	g15 := WaterVapourSpecific(15, 1013.25, 288.15, rho)
	g22 := WaterVapourSpecific(22.2, 1013.25, 288.15, rho)
	g35 := WaterVapourSpecific(35, 1013.25, 288.15, rho)
	if g22 <= g15 {
		t.Errorf("22.2 GHz line (%v) should exceed 15 GHz (%v)", g22, g15)
	}
	// Note: the f² factor keeps 35 GHz above the line peak's wings in
	// absolute terms for some densities; only check the line is a
	// local feature by comparing against a nearby frequency.
	g25 := WaterVapourSpecific(25, 1013.25, 288.15, rho)
	if g22 <= g25 {
		t.Errorf("22.2 GHz line (%v) should exceed 25 GHz (%v)", g22, g25)
	}
	_ = g35
}

func TestWaterVapourScalesWithDensity(t *testing.T) {
	f := func(rho float64) bool {
		rho = math.Abs(math.Mod(rho, 30))
		g1 := WaterVapourSpecific(80, 1013.25, 288.15, rho)
		g2 := WaterVapourSpecific(80, 1013.25, 288.15, 2*rho)
		// Attenuation grows with density (linearly to first order).
		return g2 >= g1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestGaseousAltitudeDecay(t *testing.T) {
	// Specific attenuation should fall sharply with altitude: at 18 km
	// there is almost no water vapour and far less oxygen.
	p0, t0, r0 := AtmosphereAt(0, 7.5)
	p18, t18, r18 := AtmosphereAt(18000, 7.5)
	g0 := GaseousSpecific(80, p0, t0, r0)
	g18 := GaseousSpecific(80, p18, t18, r18)
	if g18 > g0/5 {
		t.Errorf("attenuation at 18 km (%v) should be far below sea level (%v)", g18, g0)
	}
	if p18 >= p0 || r18 >= r0 {
		t.Error("pressure and vapour density must fall with altitude")
	}
	if t18 >= t0 {
		t.Error("stratospheric temperature must be below sea level")
	}
}

func TestRainCoefficientsTablePoints(t *testing.T) {
	// Exactly at a table frequency we must return the table values.
	k, a := RainCoefficients(80, Horizontal)
	if k != 1.1704 || a != 0.7115 {
		t.Errorf("RainCoefficients(80,H) = %v,%v want table values", k, a)
	}
	k, a = RainCoefficients(80, Vertical)
	if k != 1.1668 || a != 0.7021 {
		t.Errorf("RainCoefficients(80,V) = %v,%v want table values", k, a)
	}
}

func TestRainCoefficientsInterpolation(t *testing.T) {
	// Between 70 and 80 GHz both k and α should be between the rows.
	k, a := RainCoefficients(75, Horizontal)
	if k <= 1.0315 || k >= 1.1704 {
		t.Errorf("k(75) = %v, want between rows", k)
	}
	if a >= 0.7345 || a <= 0.7115 {
		t.Errorf("α(75) = %v, want between rows", a)
	}
}

func TestRainCoefficientsClamping(t *testing.T) {
	kLo, _ := RainCoefficients(0.5, Horizontal)
	if kLo != p838Table[0].kH {
		t.Errorf("below-range frequency should clamp to first row")
	}
	kHi, _ := RainCoefficients(250, Horizontal)
	if kHi != p838Table[len(p838Table)-1].kH {
		t.Errorf("above-range frequency should clamp to last row")
	}
}

func TestRainSpecificEBand(t *testing.T) {
	// Heavy tropical rain at E band is brutal: tens of dB/km. This is
	// the paper's point about E band being far worse than Ka/Ku.
	heavy := RainSpecific(80, 50, Horizontal)
	if heavy < 10 || heavy > 40 {
		t.Errorf("RainSpecific(80 GHz, 50 mm/h) = %v dB/km, want 10–40", heavy)
	}
	ka := RainSpecific(20, 50, Horizontal)
	if heavy < 2*ka {
		t.Errorf("E band rain fade (%v) should far exceed Ka band (%v)", heavy, ka)
	}
	if RainSpecific(80, 0, Horizontal) != 0 {
		t.Error("no rain must mean no rain attenuation")
	}
}

func TestRainSpecificMonotone(t *testing.T) {
	f := func(r1, r2 float64) bool {
		r1 = math.Abs(math.Mod(r1, 150))
		r2 = math.Abs(math.Mod(r2, 150))
		if r1 > r2 {
			r1, r2 = r2, r1
		}
		return RainSpecific(80, r1, Horizontal) <= RainSpecific(80, r2, Horizontal)+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestCircularPolarizationBetweenHandV(t *testing.T) {
	kH, _ := RainCoefficients(80, Horizontal)
	kV, _ := RainCoefficients(80, Vertical)
	kC, _ := RainCoefficients(80, Circular)
	lo, hi := math.Min(kH, kV), math.Max(kH, kV)
	if kC < lo || kC > hi {
		t.Errorf("circular k (%v) must lie between H (%v) and V (%v)", kC, kH, kV)
	}
}

func TestCloudSpecificCoefficient(t *testing.T) {
	// Published K_l magnitudes: ~0.4 (dB/km)/(g/m³) at 30 GHz and a
	// few at E band, at 0°C–10°C.
	k30 := CloudSpecificCoefficient(30, 273.15)
	if k30 < 0.2 || k30 > 1.2 {
		t.Errorf("K_l(30 GHz, 0°C) = %v, want 0.2–1.2", k30)
	}
	k80 := CloudSpecificCoefficient(80, 273.15)
	if k80 <= k30 {
		t.Errorf("cloud attenuation must grow with frequency: %v vs %v", k80, k30)
	}
	if k80 < 1 || k80 > 8 {
		t.Errorf("K_l(80 GHz, 0°C) = %v, want 1–8", k80)
	}
}

func TestCloudSpecificLinearInLWC(t *testing.T) {
	a := CloudSpecific(80, 280, 0.3)
	b := CloudSpecific(80, 280, 0.6)
	if math.Abs(b-2*a) > 1e-9 {
		t.Errorf("cloud attenuation must be linear in LWC: %v vs 2×%v", b, a)
	}
	if CloudSpecific(80, 280, 0) != 0 {
		t.Error("zero LWC must mean zero attenuation")
	}
}

func TestSeasonForMonth(t *testing.T) {
	cases := []struct {
		month int
		want  Season
	}{
		{1, DrySeason}, {2, DrySeason}, {3, LongRains}, {4, LongRains},
		{5, LongRains}, {6, DrySeason}, {7, DrySeason}, {8, DrySeason},
		{9, DrySeason}, {10, ShortRains}, {11, ShortRains}, {12, ShortRains},
	}
	for _, c := range cases {
		if got := SeasonForMonth(c.month); got != c.want {
			t.Errorf("SeasonForMonth(%d) = %v, want %v", c.month, got, c.want)
		}
	}
}

func TestRegionalModelPessimism(t *testing.T) {
	m := DefaultRegionalModel()
	// The backstop must include the deliberate pessimism margin even
	// over a minimal path.
	att := m.BackstopAttenuation(80, 0.1, DrySeason, Horizontal)
	if att < m.Pessimism {
		t.Errorf("backstop attenuation (%v) must include pessimism margin (%v)", att, m.Pessimism)
	}
	// Wet seasons must plan for more attenuation than the dry season.
	dry := m.BackstopAttenuation(80, 10, DrySeason, Horizontal)
	long := m.BackstopAttenuation(80, 10, LongRains, Horizontal)
	if long <= dry {
		t.Errorf("long-rains backstop (%v) must exceed dry season (%v)", long, dry)
	}
	if m.BackstopAttenuation(80, 0, DrySeason, Horizontal) != 0 {
		t.Error("zero path must mean zero backstop")
	}
}

func TestZenithGaseous(t *testing.T) {
	// From the stratosphere the remaining zenith gas attenuation is
	// negligible compared to sea level.
	g0 := ZenithGaseous(80, 0, 7.5)
	g18 := ZenithGaseous(80, 18, 7.5)
	if g18 > g0/10 {
		t.Errorf("zenith attenuation from 18 km (%v) should be <10%% of sea level (%v)", g18, g0)
	}
	if g0 < 0.5 || g0 > 10 {
		t.Errorf("sea-level zenith attenuation at 80 GHz = %v dB, want 0.5–10", g0)
	}
}

func BenchmarkGaseousSpecific(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = GaseousSpecific(80, 1013.25, 288.15, 7.5)
	}
}

func BenchmarkRainSpecific(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = RainSpecific(80, 25, Horizontal)
	}
}
