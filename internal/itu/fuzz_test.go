package itu

import (
	"math"
	"testing"
)

// FuzzAttenLUT fuzzes the memoized attenuation tables against the
// exact Annex 2 closed forms across arbitrary (frequency, altitude,
// liquid water, rain rate) inputs, holding the LUT to its documented
// contract: gaseous and cloud interpolation within 1e-3 relative of
// the exact evaluators inside the table, exact fallback above the
// table top, and rain bit-identical to RainSpecific everywhere.
func FuzzAttenLUT(f *testing.F) {
	f.Add(72.0, 18000.0, 0.5, 10.0)
	f.Add(82.0, 0.0, 0.0, 0.0)
	f.Add(71.0, 29999.0, 1.5, 145.0)
	f.Add(76.5, 31000.0, 0.05, 0.1)
	f.Add(86.0, 50.0, 2.0, 250.0)
	f.Fuzz(func(t *testing.T, fGHz, altM, lwc, rainRate float64) {
		// Clamp to the domains the models are specified over; the
		// interesting surface is interpolation knots, cell boundaries,
		// and the table-top fallback, not NaN plumbing.
		if math.IsNaN(fGHz) || math.IsInf(fGHz, 0) || fGHz < 1 || fGHz > 350 {
			return
		}
		if math.IsNaN(altM) || math.IsInf(altM, 0) || altM < 0 || altM > 100000 {
			return
		}
		if math.IsNaN(lwc) || math.IsInf(lwc, 0) || lwc < 0 || lwc > 10 {
			return
		}
		if math.IsNaN(rainRate) || math.IsInf(rainRate, 0) || rainRate < 0 || rainRate > 500 {
			return
		}
		const rho0 = 7.5
		l := NewAttenLUT(fGHz, rho0, Horizontal)

		pr, tk, rho := AtmosphereAt(altM, rho0)
		exactGas := GaseousSpecific(fGHz, pr, tk, rho)
		gotGas := l.GaseousAt(altM)
		if altM >= lutMaxAltM {
			if gotGas != exactGas {
				t.Fatalf("f=%v alt=%v: above-table gaseous must be exact: lut %v exact %v",
					fGHz, altM, gotGas, exactGas)
			}
		} else if exactGas != 0 {
			if rel := math.Abs(gotGas-exactGas) / math.Abs(exactGas); rel > 1e-3 {
				t.Fatalf("f=%v alt=%v: gaseous rel error %v > 1e-3 (lut %v exact %v)",
					fGHz, altM, rel, gotGas, exactGas)
			}
		}

		exactCloud := CloudSpecific(fGHz, tk, lwc)
		gotCloud := l.CloudSpecificAt(altM, lwc)
		if lwc == 0 {
			if gotCloud != 0 {
				t.Fatalf("f=%v alt=%v: zero liquid water must cost zero, got %v", fGHz, altM, gotCloud)
			}
		} else if altM >= lutMaxAltM {
			if gotCloud != exactCloud {
				t.Fatalf("f=%v alt=%v lwc=%v: above-table cloud must be exact: lut %v exact %v",
					fGHz, altM, lwc, gotCloud, exactCloud)
			}
		} else if exactCloud != 0 {
			if rel := math.Abs(gotCloud-exactCloud) / math.Abs(exactCloud); rel > 1e-3 {
				t.Fatalf("f=%v alt=%v lwc=%v: cloud rel error %v > 1e-3 (lut %v exact %v)",
					fGHz, altM, lwc, rel, gotCloud, exactCloud)
			}
		}

		if got, exact := l.RainSpecificAt(rainRate), RainSpecific(fGHz, rainRate, Horizontal); got != exact {
			t.Fatalf("f=%v rate=%v: rain must be bit-identical: lut %v exact %v",
				fGHz, rainRate, got, exact)
		}
	})
}
