package itu

import (
	"math"
	"sync"
)

// AttenLUT memoizes the frequency-dependent parts of the P.676/P.838/
// P.840 specific-attenuation models so path integration stops
// recomputing identical spectroscopy per sample. The Link Evaluator
// integrates attenuation along ~17 samples per candidate path per
// epoch; every sample used to re-derive the full Annex 2 closed forms
// (several Pow/Exp calls) for inputs that depend only on (frequency,
// altitude, rain rate).
//
// Tables and their error bounds (see DESIGN.md §7):
//
//   - Gaseous (P.676) and cloud-coefficient (P.840) specific
//     attenuation are tabulated against the standard-atmosphere
//     altitude profile at lutAltStepM knots and linearly
//     interpolated. Both curves are smooth with scale heights ≥ 2 km,
//     so the interpolation error is ≤ max|f”|·Δ²/8 ≈ (Δ/H)²/8
//     ≈ 8·10⁻⁵ relative at Δ=50 m — under 10⁻³ dB on any path this
//     system evaluates. Altitudes above the table top fall back to
//     the exact closed forms.
//   - Rain (P.838) memoizes the k/α regression coefficients — the
//     log-interpolated table walk — and keeps the final k·R^α power
//     exact, so rain attenuation is bit-identical to RainSpecific.
//
// A LUT is immutable after construction and safe for concurrent use.
type AttenLUT struct {
	FGHz float64
	Rho0 float64 // sea-level water-vapour density the profile assumes
	Pol  Polarization

	gaseous []float64 // knot i: GaseousSpecific at alt i·lutAltStepM
	cloudK  []float64 // knot i: CloudSpecificCoefficient at that alt's temp
	rainK   float64
	rainA   float64
}

const (
	// lutAltStepM is the altitude quantization of the gaseous/cloud
	// tables.
	lutAltStepM = 50.0
	// lutMaxAltM is the table top; above it the exact closed forms
	// are used (specific attenuation is negligible up there anyway).
	lutMaxAltM = 30000.0
)

// NewAttenLUT builds the memoized tables for one frequency, sea-level
// vapour density, and polarization.
func NewAttenLUT(fGHz, rho0 float64, pol Polarization) *AttenLUT {
	n := int(lutMaxAltM/lutAltStepM) + 1
	l := &AttenLUT{
		FGHz: fGHz, Rho0: rho0, Pol: pol,
		gaseous: make([]float64, n),
		cloudK:  make([]float64, n),
	}
	for i := 0; i < n; i++ {
		alt := float64(i) * lutAltStepM
		pr, tk, rho := AtmosphereAt(alt, rho0)
		l.gaseous[i] = GaseousSpecific(fGHz, pr, tk, rho)
		l.cloudK[i] = CloudSpecificCoefficient(fGHz, tk)
	}
	l.rainK, l.rainA = RainCoefficients(fGHz, pol)
	return l
}

// interp linearly interpolates a table indexed by altitude, falling
// back to the exact evaluator beyond the table.
//
//minkowski:hotpath
func (l *AttenLUT) interp(tab []float64, altM float64, exact func() float64) float64 {
	if altM <= 0 {
		return tab[0]
	}
	g := altM / lutAltStepM
	i := int(g)
	if i >= len(tab)-1 {
		return exact()
	}
	fr := g - float64(i)
	return tab[i] + fr*(tab[i+1]-tab[i])
}

// GaseousAt returns the P.676 gaseous specific attenuation (dB/km) at
// an altitude on the standard-atmosphere profile.
//
//minkowski:hotpath
func (l *AttenLUT) GaseousAt(altM float64) float64 {
	return l.interp(l.gaseous, altM, func() float64 {
		pr, tk, rho := AtmosphereAt(altM, l.Rho0)
		return GaseousSpecific(l.FGHz, pr, tk, rho)
	})
}

// CloudSpecificAt returns the P.840 cloud specific attenuation
// (dB/km) for liquid water content lwc (g/m³) at an altitude on the
// standard-atmosphere temperature profile.
//
//minkowski:hotpath
func (l *AttenLUT) CloudSpecificAt(altM, lwc float64) float64 {
	if lwc <= 0 {
		return 0
	}
	k := l.interp(l.cloudK, altM, func() float64 {
		_, tk, _ := AtmosphereAt(altM, l.Rho0)
		return CloudSpecificCoefficient(l.FGHz, tk)
	})
	return k * lwc
}

// RainSpecificAt returns the P.838 rain specific attenuation (dB/km)
// for the given rain rate, bit-identical to RainSpecific at the LUT's
// frequency and polarization (only the coefficient walk is memoized).
//
//minkowski:hotpath
func (l *AttenLUT) RainSpecificAt(rainRate float64) float64 {
	if rainRate <= 0 {
		return 0
	}
	return l.rainK * math.Pow(rainRate, l.rainA)
}

// --- Package-level LUT cache ----------------------------------------

type lutKey struct {
	fGHz, rho0 float64
	pol        Polarization
}

var (
	lutMu    sync.Mutex
	lutCache = map[lutKey]*AttenLUT{}
)

// LUTFor returns the shared memoized table set for a frequency,
// building it on first use. The handful of distinct channel
// frequencies in the system keeps the cache tiny.
func LUTFor(fGHz, rho0 float64, pol Polarization) *AttenLUT {
	k := lutKey{fGHz, rho0, pol}
	lutMu.Lock()
	defer lutMu.Unlock()
	if l, ok := lutCache[k]; ok {
		return l
	}
	l := NewAttenLUT(fGHz, rho0, pol)
	lutCache[k] = l
	return l
}
