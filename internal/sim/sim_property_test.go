package sim

import (
	"math"
	"sort"
	"testing"
	"testing/quick"
)

// TestEventOrderProperty: for any set of scheduling times, events
// fire in non-decreasing time order with FIFO tie-breaking.
func TestEventOrderProperty(t *testing.T) {
	f := func(raw []float64) bool {
		e := New(1)
		times := make([]float64, 0, len(raw))
		for _, x := range raw {
			if math.IsNaN(x) || math.IsInf(x, 0) {
				continue
			}
			times = append(times, math.Abs(math.Mod(x, 1e6)))
		}
		var fired []float64
		for _, at := range times {
			e.At(at, func() { fired = append(fired, e.Now()) })
		}
		e.Run(2e6)
		if len(fired) != len(times) {
			return false
		}
		want := append([]float64(nil), times...)
		sort.Float64s(want)
		for i := range fired {
			if fired[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestClockMonotoneProperty: the clock never goes backwards, no
// matter how events schedule more events.
func TestClockMonotoneProperty(t *testing.T) {
	f := func(deltas []int8) bool {
		e := New(2)
		last := -1.0
		ok := true
		var spawn func(depth int)
		spawn = func(depth int) {
			if e.Now() < last {
				ok = false
			}
			last = e.Now()
			if depth <= 0 {
				return
			}
			for _, d := range deltas {
				d := float64(int(d)%17) - 4 // some negative: clamped to now
				e.After(d, func() { spawn(depth - 1) })
			}
		}
		e.At(0, func() { spawn(2) })
		e.Run(1e9)
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
