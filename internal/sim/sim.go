// Package sim is the deterministic discrete-event engine every other
// subsystem runs on. The paper's §6 asks for exactly this property:
// "Design solvers and their inputs in a way that enables the
// reproducibility of network commands in tests and post-hoc
// analysis." All randomness is drawn from named, seeded streams so a
// run is a pure function of its configuration.
//
// Time is a float64 in seconds since simulation start.
package sim

import (
	"container/heap"
	"fmt"
	"hash/fnv"
	"math"
	"math/rand"
)

// Event is one scheduled callback.
type event struct {
	at  float64
	seq uint64 // FIFO tiebreak for simultaneous events
	fn  func()
	// canceled events stay in the heap but are skipped.
	canceled bool
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at < h[j].at {
		return true
	}
	if h[j].at < h[i].at {
		return false
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(*event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return e
}

// Timer is a handle for a scheduled event that can be canceled.
type Timer struct{ ev *event }

// Cancel prevents the event from firing. Canceling an already-fired
// or already-canceled timer is a no-op.
func (t *Timer) Cancel() {
	if t != nil && t.ev != nil {
		t.ev.canceled = true
	}
}

// Engine is the event loop.
type Engine struct {
	now  float64
	pq   eventHeap
	seq  uint64
	seed int64
	rngs map[string]*rand.Rand
	// Processed counts executed events (telemetry/tests).
	Processed uint64
}

// New creates an engine with the master seed all named RNG streams
// derive from.
func New(seed int64) *Engine {
	return &Engine{seed: seed, rngs: make(map[string]*rand.Rand)}
}

// Now returns the current simulation time in seconds.
func (e *Engine) Now() float64 { return e.now }

// RNG returns the named deterministic random stream, creating it on
// first use. Distinct names give independent streams; the same name
// always gives the same sequence for the same master seed.
func (e *Engine) RNG(name string) *rand.Rand {
	if r, ok := e.rngs[name]; ok {
		return r
	}
	h := fnv.New64a()
	h.Write([]byte(name))
	r := rand.New(rand.NewSource(e.seed ^ int64(h.Sum64())))
	e.rngs[name] = r
	return r
}

// At schedules fn at absolute time t. Scheduling in the past (or at
// the current instant) fires on the next dispatch at the current
// time. Returns a cancelable Timer.
func (e *Engine) At(t float64, fn func()) *Timer {
	if fn == nil {
		panic("sim: nil event function")
	}
	if math.IsNaN(t) {
		panic("sim: NaN event time")
	}
	if t < e.now {
		t = e.now
	}
	e.seq++
	ev := &event{at: t, seq: e.seq, fn: fn}
	heap.Push(&e.pq, ev)
	return &Timer{ev: ev}
}

// After schedules fn d seconds from now.
func (e *Engine) After(d float64, fn func()) *Timer {
	if d < 0 {
		d = 0
	}
	return e.At(e.now+d, fn)
}

// Every schedules fn to run now and then every interval seconds for
// as long as fn returns true. The returned Timer cancels the
// *pending* occurrence.
func (e *Engine) Every(interval float64, fn func() bool) *Timer {
	if interval <= 0 {
		panic(fmt.Sprintf("sim: non-positive interval %v", interval))
	}
	t := &Timer{}
	var tick func()
	tick = func() {
		if fn() {
			t.ev = e.After(interval, tick).ev
		}
	}
	t.ev = e.At(e.now, tick).ev
	return t
}

// Step executes the single next event, advancing the clock to it.
// Returns false when no events remain.
func (e *Engine) Step() bool {
	for e.pq.Len() > 0 {
		ev := heap.Pop(&e.pq).(*event)
		if ev.canceled {
			continue
		}
		e.now = ev.at
		e.Processed++
		ev.fn()
		return true
	}
	return false
}

// Run executes events until the clock would pass `until` (inclusive)
// or the queue drains. The clock finishes at exactly `until` if it
// was reached.
func (e *Engine) Run(until float64) {
	for e.pq.Len() > 0 {
		// Peek.
		next := e.pq[0]
		if next.canceled {
			heap.Pop(&e.pq)
			continue
		}
		if next.at > until {
			break
		}
		heap.Pop(&e.pq)
		e.now = next.at
		e.Processed++
		next.fn()
	}
	if e.now < until {
		e.now = until
	}
}

// Pending returns the number of live events in the queue.
func (e *Engine) Pending() int {
	n := 0
	for _, ev := range e.pq {
		if !ev.canceled {
			n++
		}
	}
	return n
}
