package sim

import (
	"testing"
)

func TestEventOrdering(t *testing.T) {
	e := New(1)
	var order []int
	e.At(30, func() { order = append(order, 3) })
	e.At(10, func() { order = append(order, 1) })
	e.At(20, func() { order = append(order, 2) })
	e.Run(100)
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Errorf("order = %v, want [1 2 3]", order)
	}
	if e.Now() != 100 {
		t.Errorf("clock = %v, want 100", e.Now())
	}
}

func TestSimultaneousEventsFIFO(t *testing.T) {
	e := New(1)
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		e.At(5, func() { order = append(order, i) })
	}
	e.Run(10)
	for i, v := range order {
		if v != i {
			t.Fatalf("simultaneous events out of FIFO order: %v", order)
		}
	}
}

func TestAfterRelative(t *testing.T) {
	e := New(1)
	var firedAt float64 = -1
	e.At(50, func() {
		e.After(25, func() { firedAt = e.Now() })
	})
	e.Run(100)
	if firedAt != 75 {
		t.Errorf("After fired at %v, want 75", firedAt)
	}
}

func TestSchedulingInPastClamps(t *testing.T) {
	e := New(1)
	var firedAt float64 = -1
	e.At(50, func() {
		e.At(10, func() { firedAt = e.Now() }) // in the past
	})
	e.Run(100)
	if firedAt != 50 {
		t.Errorf("past event fired at %v, want clamped to 50", firedAt)
	}
}

func TestRunStopsAtBoundary(t *testing.T) {
	e := New(1)
	fired := false
	e.At(150, func() { fired = true })
	e.Run(100)
	if fired {
		t.Error("event past the run boundary must not fire")
	}
	if e.Now() != 100 {
		t.Errorf("clock = %v, want 100", e.Now())
	}
	e.Run(200)
	if !fired {
		t.Error("event should fire on the next run")
	}
}

func TestTimerCancel(t *testing.T) {
	e := New(1)
	fired := false
	tm := e.At(10, func() { fired = true })
	tm.Cancel()
	e.Run(100)
	if fired {
		t.Error("canceled event fired")
	}
	// Double-cancel and nil-safe cancel must not panic.
	tm.Cancel()
	var nilT *Timer
	nilT.Cancel()
}

func TestEvery(t *testing.T) {
	e := New(1)
	count := 0
	e.Every(10, func() bool {
		count++
		return count < 5
	})
	e.Run(1000)
	if count != 5 {
		t.Errorf("periodic fired %d times, want 5", count)
	}
}

func TestEveryRunsImmediately(t *testing.T) {
	e := New(1)
	var first float64 = -1
	e.At(7, func() {
		e.Every(10, func() bool {
			if first < 0 {
				first = e.Now()
			}
			return false
		})
	})
	e.Run(100)
	if first != 7 {
		t.Errorf("Every first fire at %v, want immediately at 7", first)
	}
}

func TestEveryCancel(t *testing.T) {
	e := New(1)
	count := 0
	tm := e.Every(10, func() bool { count++; return true })
	e.At(35, func() { tm.Cancel() })
	e.Run(1000)
	// Fires at 0, 10, 20, 30; the pending occurrence at 40 is
	// canceled.
	if count != 4 {
		t.Errorf("periodic fired %d times, want 4", count)
	}
}

func TestRNGDeterminism(t *testing.T) {
	e1, e2 := New(42), New(42)
	for i := 0; i < 100; i++ {
		if e1.RNG("weather").Float64() != e2.RNG("weather").Float64() {
			t.Fatal("same seed+name must give the same stream")
		}
	}
	// Distinct names must give distinct streams.
	same := 0
	for i := 0; i < 100; i++ {
		if e1.RNG("a").Float64() == e1.RNG("b").Float64() {
			same++
		}
	}
	if same > 5 {
		t.Error("streams 'a' and 'b' look identical")
	}
}

func TestRNGSeedsDiffer(t *testing.T) {
	e1, e2 := New(1), New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if e1.RNG("x").Float64() == e2.RNG("x").Float64() {
			same++
		}
	}
	if same > 5 {
		t.Error("different master seeds should give different streams")
	}
}

func TestStep(t *testing.T) {
	e := New(1)
	n := 0
	e.At(1, func() { n++ })
	e.At(2, func() { n++ })
	if !e.Step() || e.Now() != 1 || n != 1 {
		t.Error("first step wrong")
	}
	if !e.Step() || e.Now() != 2 || n != 2 {
		t.Error("second step wrong")
	}
	if e.Step() {
		t.Error("empty queue should return false")
	}
}

func TestPending(t *testing.T) {
	e := New(1)
	t1 := e.At(1, func() {})
	e.At(2, func() {})
	if e.Pending() != 2 {
		t.Errorf("Pending = %d, want 2", e.Pending())
	}
	t1.Cancel()
	if e.Pending() != 1 {
		t.Errorf("Pending after cancel = %d, want 1", e.Pending())
	}
}

func TestProcessedCount(t *testing.T) {
	e := New(1)
	for i := 0; i < 10; i++ {
		e.At(float64(i), func() {})
	}
	e.Run(100)
	if e.Processed != 10 {
		t.Errorf("Processed = %d, want 10", e.Processed)
	}
}

func TestNilEventPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("scheduling a nil function must panic")
		}
	}()
	New(1).At(1, nil)
}

func TestNonPositiveIntervalPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Every(0) must panic")
		}
	}()
	New(1).Every(0, func() bool { return false })
}

func BenchmarkScheduleAndRun(b *testing.B) {
	e := New(1)
	for i := 0; i < b.N; i++ {
		e.After(float64(i%1000), func() {})
		if i%1000 == 999 {
			e.Run(e.Now() + 1000)
		}
	}
}
