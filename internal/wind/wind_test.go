package wind

import (
	"math"
	"testing"

	"minkowski/internal/geo"
)

func TestLayersCoverBand(t *testing.T) {
	f := NewField(DefaultConfig())
	layers := f.Layers()
	if len(layers) != DefaultConfig().LayerCount {
		t.Fatalf("layer count = %d", len(layers))
	}
	if layers[0].AltMinM != 14000 || layers[len(layers)-1].AltMaxM != 19000 {
		t.Error("layers must span the configured band")
	}
	for i := 1; i < len(layers); i++ {
		if layers[i].AltMinM != layers[i-1].AltMaxM {
			t.Error("layers must tile without gaps")
		}
	}
}

func TestLayerAtClamps(t *testing.T) {
	f := NewField(DefaultConfig())
	if got := f.LayerAt(5000); got != f.Layers()[0] {
		t.Error("below-band altitude should clamp to the bottom layer")
	}
	last := f.Layers()[len(f.Layers())-1]
	if got := f.LayerAt(25000); got != last {
		t.Error("above-band altitude should clamp to the top layer")
	}
	mid := f.LayerAt(16250)
	if 16250 < mid.AltMinM || 16250 > mid.AltMaxM {
		t.Errorf("mid-band lookup returned wrong layer [%v,%v]", mid.AltMinM, mid.AltMaxM)
	}
}

func TestInitialHeadingsSpread(t *testing.T) {
	// Navigation requires layers blowing in different directions: the
	// spread of headings must cover a wide arc.
	f := NewField(DefaultConfig())
	minH, maxH := math.Inf(1), math.Inf(-1)
	for _, l := range f.Layers() {
		h := l.Heading()
		if h < minH {
			minH = h
		}
		if h > maxH {
			maxH = h
		}
	}
	if maxH-minH < geo.Deg(120) {
		t.Errorf("heading spread only %v°, navigation would be impossible", geo.ToDeg(maxH-minH))
	}
}

func TestDeterminism(t *testing.T) {
	f1 := NewField(DefaultConfig())
	f2 := NewField(DefaultConfig())
	for i := 0; i < 200; i++ {
		f1.Step(60)
		f2.Step(60)
	}
	l1, l2 := f1.Layers(), f2.Layers()
	for i := range l1 {
		if l1[i] != l2[i] {
			t.Fatal("same seed must give identical wind evolution")
		}
	}
}

func TestStepKeepsSpeedsBounded(t *testing.T) {
	f := NewField(DefaultConfig())
	for i := 0; i < 5000; i++ {
		f.Step(60)
	}
	for _, l := range f.Layers() {
		if s := l.Speed(); s > 60 {
			t.Errorf("layer wind %v m/s is unphysical (OU not mean-reverting?)", s)
		}
	}
}

func TestVelocityAtSpatialVariation(t *testing.T) {
	f := NewField(DefaultConfig())
	u1, v1 := f.VelocityAt(geo.LLADeg(-1, 37, 16000))
	u2, v2 := f.VelocityAt(geo.LLADeg(1.5, 39, 16000))
	if u1 == u2 && v1 == v2 {
		t.Error("wind should vary spatially within a layer")
	}
	// Same position: deterministic.
	u3, v3 := f.VelocityAt(geo.LLADeg(-1, 37, 16000))
	if u1 != u3 || v1 != v3 {
		t.Error("VelocityAt must be deterministic for the same query")
	}
}

func TestVelocityCorrelatedNearby(t *testing.T) {
	f := NewField(DefaultConfig())
	u1, v1 := f.VelocityAt(geo.LLADeg(-1.0, 37.0, 16000))
	u2, v2 := f.VelocityAt(geo.LLADeg(-1.05, 37.05, 16000))
	// Balloons a few km apart in the same layer see nearly the same
	// wind — the correlated-motion property the paper credits for B2B
	// link longevity.
	if math.Hypot(u1-u2, v1-v2) > 2 {
		t.Errorf("nearby winds differ by %v m/s, want < 2", math.Hypot(u1-u2, v1-v2))
	}
}

func TestBestLayerToward(t *testing.T) {
	f := NewField(DefaultConfig())
	// For every bearing, the chosen layer's along-track speed must be
	// the best achievable (no other layer strictly dominates on the
	// scoring function).
	for bDeg := 0.0; bDeg < 360; bDeg += 30 {
		bearing := geo.Deg(bDeg)
		i, along := f.BestLayerToward(bearing)
		if i < 0 || i >= len(f.Layers()) {
			t.Fatalf("layer index out of range: %d", i)
		}
		// With 10 well-spread layers there should almost always be a
		// layer making forward progress.
		if along < -1 {
			t.Errorf("bearing %v°: best along-track %v m/s — no usable layer?", bDeg, along)
		}
	}
}

func TestLayerCenterAltClamps(t *testing.T) {
	f := NewField(DefaultConfig())
	if got := f.LayerCenterAlt(-5); got != f.LayerCenterAlt(0) {
		t.Error("negative index should clamp")
	}
	n := len(f.Layers())
	if got := f.LayerCenterAlt(n + 5); got != f.LayerCenterAlt(n-1) {
		t.Error("overflow index should clamp")
	}
	c0 := f.LayerCenterAlt(0)
	if c0 != (14000+14500)/2 {
		t.Errorf("layer 0 center = %v", c0)
	}
}

func BenchmarkStep(b *testing.B) {
	f := NewField(DefaultConfig())
	for i := 0; i < b.N; i++ {
		f.Step(60)
	}
}

func BenchmarkVelocityAt(b *testing.B) {
	f := NewField(DefaultConfig())
	p := geo.LLADeg(-1, 37, 16000)
	for i := 0; i < b.N; i++ {
		_, _ = f.VelocityAt(p)
	}
}
