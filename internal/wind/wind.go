// Package wind models the stratospheric wind field Loon's balloons
// rode. The defining property (§2.2 Navigation) is that winds at
// *different altitudes* blow in *different directions*, which is what
// lets an altitude-only vehicle navigate: the Fleet Management
// Software picks the altitude whose current drifts toward the target.
//
// The field is a stack of altitude layers. Each layer's region-wide
// mean wind is a slowly evolving Ornstein–Uhlenbeck process in the
// (east, north) velocity plane, plus smooth spatial perturbation so
// that two balloons in the same layer see correlated but not
// identical winds (the paper notes correlated B2B endpoint motion as
// a reason B2B links outlived B2G links).
package wind

import (
	"math"
	"math/rand"

	"minkowski/internal/geo"
)

// Layer is one altitude band's wind state.
type Layer struct {
	// AltMinM and AltMaxM bound the band.
	AltMinM, AltMaxM float64
	// U and V are the region-mean east/north wind components, m/s.
	U, V float64
}

// Speed returns the layer's mean wind speed in m/s.
func (l Layer) Speed() float64 { return math.Hypot(l.U, l.V) }

// Heading returns the direction the wind blows TOWARD, radians
// clockwise from north.
func (l Layer) Heading() float64 {
	return geo.WrapAngle(math.Atan2(l.U, l.V))
}

// Config tunes the wind field.
type Config struct {
	// AltMinM/AltMaxM bound the navigable band (Loon flew 15–18 km;
	// we model a slightly wider band for headroom).
	AltMinM, AltMaxM float64
	// LayerCount is how many distinct bands exist.
	LayerCount int
	// MeanSpeedMS is the long-run mean layer wind speed.
	MeanSpeedMS float64
	// RelaxHours is the OU relaxation time: how quickly layer winds
	// forget their current state.
	RelaxHours float64
	// Seed makes the field reproducible.
	Seed int64
}

// DefaultConfig returns a field typical of equatorial stratosphere:
// moderate winds (5–15 m/s) in a 14–19 km navigable band split into
// 10 layers.
func DefaultConfig() Config {
	return Config{
		AltMinM: 14000, AltMaxM: 19000,
		LayerCount:  10,
		MeanSpeedMS: 9,
		RelaxHours:  18,
		Seed:        1,
	}
}

// Field is the evolving layered wind field.
type Field struct {
	cfg    Config
	rng    *rand.Rand
	layers []Layer
	now    float64
}

// NewField creates a field with layer winds drawn around the mean
// speed in well-spread directions, so navigation is possible from the
// start.
func NewField(cfg Config) *Field {
	f := &Field{
		cfg:    cfg,
		rng:    rand.New(rand.NewSource(cfg.Seed)),
		layers: make([]Layer, cfg.LayerCount),
	}
	band := (cfg.AltMaxM - cfg.AltMinM) / float64(cfg.LayerCount)
	for i := range f.layers {
		// Spread initial headings across the compass with jitter so
		// adjacent layers differ meaningfully.
		heading := 2*math.Pi*float64(i)/float64(cfg.LayerCount) + f.rng.NormFloat64()*0.5
		speed := cfg.MeanSpeedMS * (0.5 + f.rng.Float64())
		f.layers[i] = Layer{
			AltMinM: cfg.AltMinM + band*float64(i),
			AltMaxM: cfg.AltMinM + band*float64(i+1),
			U:       speed * math.Sin(heading),
			V:       speed * math.Cos(heading),
		}
	}
	return f
}

// Layers returns a snapshot copy of the current layer states.
func (f *Field) Layers() []Layer {
	out := make([]Layer, len(f.layers))
	copy(out, f.layers)
	return out
}

// LayerAt returns the layer containing the altitude, clamping to the
// navigable band.
func (f *Field) LayerAt(altM float64) Layer {
	if altM <= f.layers[0].AltMinM {
		return f.layers[0]
	}
	last := f.layers[len(f.layers)-1]
	if altM >= last.AltMaxM {
		return last
	}
	band := (f.cfg.AltMaxM - f.cfg.AltMinM) / float64(f.cfg.LayerCount)
	i := int((altM - f.cfg.AltMinM) / band)
	if i < 0 {
		i = 0
	}
	if i >= len(f.layers) {
		i = len(f.layers) - 1
	}
	return f.layers[i]
}

// Step advances the field by dt seconds. Each layer's (U, V) follows
// an OU process toward a zero-mean with variance keeping speeds near
// MeanSpeedMS.
func (f *Field) Step(dt float64) {
	f.now += dt
	tau := f.cfg.RelaxHours * 3600
	theta := dt / tau
	if theta > 1 {
		theta = 1
	}
	sigma := f.cfg.MeanSpeedMS * math.Sqrt(2*theta)
	for i := range f.layers {
		l := &f.layers[i]
		l.U += -theta*l.U + sigma*f.rng.NormFloat64()*0.7
		l.V += -theta*l.V + sigma*f.rng.NormFloat64()*0.7
	}
}

// VelocityAt returns the wind velocity (east, north m/s) experienced
// at a 3-D position: the layer mean plus a smooth spatial
// perturbation (~15% of mean speed) so nearby balloons see similar
// but not identical winds.
func (f *Field) VelocityAt(p geo.LLA) (u, v float64) {
	l := f.LayerAt(p.Alt)
	latDeg, lonDeg := geo.ToDeg(p.Lat), geo.ToDeg(p.Lon)
	// Deterministic smooth perturbation field (no RNG: repeatable for
	// any query order).
	phase := p.Alt / 1000
	du := 0.15 * f.cfg.MeanSpeedMS * math.Sin(latDeg*1.3+phase)
	dv := 0.15 * f.cfg.MeanSpeedMS * math.Cos(lonDeg*1.1-phase)
	return l.U + du, l.V + dv
}

// BestLayerToward returns the layer index whose mean wind drifts most
// directly toward the target bearing (radians from north), along with
// the achieved along-track speed (m/s, negative if every layer blows
// away from the target). This is the heart of the FMS altitude
// controller.
func (f *Field) BestLayerToward(bearing float64) (index int, alongTrack float64) {
	best := math.Inf(-1)
	bi := 0
	dirU, dirV := math.Sin(bearing), math.Cos(bearing)
	for i, l := range f.layers {
		along := l.U*dirU + l.V*dirV
		// Penalize cross-track drift slightly so the controller
		// prefers layers that don't slide sideways.
		cross := math.Abs(l.U*dirV - l.V*dirU)
		score := along - 0.3*cross
		if score > best {
			best = score
			bi = i
		}
	}
	l := f.layers[bi]
	return bi, l.U*dirU + l.V*dirV
}

// LayerCenterAlt returns the center altitude of layer i.
func (f *Field) LayerCenterAlt(i int) float64 {
	if i < 0 {
		i = 0
	}
	if i >= len(f.layers) {
		i = len(f.layers) - 1
	}
	return (f.layers[i].AltMinM + f.layers[i].AltMaxM) / 2
}
