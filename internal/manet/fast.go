package manet

import (
	"minkowski/internal/sim"
)

// Fast is an oracle router that models a converged proactive MANET
// (BATMAN-like) without paying for per-second beacon floods: after
// any topology change, routes reflecting the new topology become
// available ConvergenceS later; in the window between change and
// convergence, the *old* table is served, so routes through dead
// links break (exactly the transient blackhole a real protocol
// shows) and new links are not yet used.
//
// Long-horizon experiments (Figs. 4, 6, 7, 8, 11) use Fast; the
// message-level protocols above validate its convergence constant
// (see the Appendix D comparison bench).
type Fast struct {
	eng *sim.Engine
	net Network
	// ConvergenceS is the repair delay after a topology change
	// (batman-adv with 1 s OGMs repairs in ~1–3 s).
	ConvergenceS float64

	tables  map[string]map[string]string // src -> dst -> next hop
	dirtyAt float64                      // earliest unapplied change; <0 when clean
	// Recomputes counts table rebuilds (telemetry).
	Recomputes int
}

// NewFast creates the oracle router. Call TopologyChanged from the
// link fabric's OnUp/OnDown callbacks.
func NewFast(eng *sim.Engine, net Network, convergenceS float64) *Fast {
	f := &Fast{eng: eng, net: net, ConvergenceS: convergenceS, dirtyAt: -1}
	f.recompute()
	return f
}

// Name implements Router.
func (f *Fast) Name() string { return "fast-converged" }

// Stats implements Router. The oracle sends no messages; overhead
// modelling belongs to the message-level protocols.
func (f *Fast) Stats() Stats { return Stats{} }

// Start implements Router (no periodic work).
func (f *Fast) Start() {}

// TopologyChanged notes that the link set changed now.
func (f *Fast) TopologyChanged() {
	if f.dirtyAt < 0 {
		f.dirtyAt = f.eng.Now()
	}
}

// maybeRecompute rebuilds tables once the convergence delay has
// passed since the first unapplied change.
func (f *Fast) maybeRecompute() {
	if f.dirtyAt >= 0 && f.eng.Now() >= f.dirtyAt+f.ConvergenceS {
		f.recompute()
		f.dirtyAt = -1
	}
}

// recompute rebuilds all-pairs next hops by BFS from every node.
func (f *Fast) recompute() {
	f.Recomputes++
	f.tables = make(map[string]map[string]string)
	for _, src := range f.net.Nodes() {
		f.tables[src] = bfsNextHops(f.net, src)
	}
}

// bfsNextHops returns dst → first-hop for every node reachable from
// src.
func bfsNextHops(net Network, src string) map[string]string {
	out := map[string]string{}
	visited := map[string]bool{src: true}
	type qe struct{ node, via string }
	var queue []qe
	for _, nb := range net.Neighbors(src) {
		visited[nb] = true
		out[nb] = nb
		queue = append(queue, qe{nb, nb})
	}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		for _, m := range net.Neighbors(cur.node) {
			if visited[m] {
				continue
			}
			visited[m] = true
			out[m] = cur.via
			queue = append(queue, qe{m, cur.via})
		}
	}
	return out
}

// NextHop implements Router. Stale entries whose next hop is no
// longer adjacent fail (the transient blackhole before convergence).
func (f *Fast) NextHop(src, dst string) (string, bool) {
	f.maybeRecompute()
	t, ok := f.tables[src]
	if !ok {
		return "", false
	}
	nh, ok := t[dst]
	if !ok {
		return "", false
	}
	if !stillAdjacent(f.net, src, nh) {
		return "", false
	}
	return nh, true
}
