package manet

import (
	"testing"

	"minkowski/internal/sim"
)

func TestStaticNetworkOneWayEdges(t *testing.T) {
	net := NewStaticNetwork()
	net.ConnectOneWay("a", "b")
	if !contains(net.Neighbors("a"), "b") {
		t.Error("a should hear b after ConnectOneWay(a, b)")
	}
	if contains(net.Neighbors("b"), "a") {
		t.Error("one-way edge must not create the reverse direction")
	}

	// A symmetric link degraded to one-way: only the removed direction
	// disappears.
	net.Connect("c", "d")
	net.DisconnectOneWay("c", "d")
	if contains(net.Neighbors("c"), "d") {
		t.Error("c→d should be gone after DisconnectOneWay")
	}
	if !contains(net.Neighbors("d"), "c") {
		t.Error("d→c must survive DisconnectOneWay(c, d)")
	}
}

func TestFastRouterHonorsAsymmetry(t *testing.T) {
	// gs ← b1 exists but gs → b1 does not: the fast router's
	// gateway-rooted tree must not offer b1 a route that depends on
	// the dead direction, and traffic b1 → gs must still work over
	// the surviving direction.
	eng := sim.New(1)
	net := NewStaticNetwork()
	net.Connect("gs", "b1")
	net.Connect("b1", "b2")
	f := NewFast(eng, net, 0.5)
	eng.Run(2)
	if _, ok := PathFrom(f, "b2", "gs"); !ok {
		t.Fatal("precondition: symmetric route up")
	}

	// Kill only b1's transmissions toward gs (the chaos
	// partial-partition direction): the up-path must disappear while
	// the gateway can still reach b1.
	net.DisconnectOneWay("b1", "gs")
	f.TopologyChanged()
	eng.Run(eng.Now() + 2)
	if _, ok := PathFrom(f, "b2", "gs"); ok {
		t.Error("up-path should be dead: b1 can no longer transmit to gs")
	}
	if _, ok := PathFrom(f, "gs", "b2"); !ok {
		t.Error("down-path gs→b2 must survive the one-way cut")
	}
}

func TestFindLoopDetectsCycle(t *testing.T) {
	loop, found := FindLoop(loopRouter{}, []string{"a", "b", "z"})
	if !found {
		t.Fatal("the ping-pong router must report a loop")
	}
	if len(loop.Cycle) < 2 {
		t.Errorf("cycle %v too short to be a loop", loop.Cycle)
	}
}

func TestFindLoopIgnoresDeadEnds(t *testing.T) {
	// A partitioned line: b02 has no next hop toward gs. That is a
	// dead end (packets drop), not a loop (packets orbit) — FindLoop
	// must stay quiet where PathFrom conflates the two.
	eng := sim.New(1)
	net := lineTopology(3)
	net.Disconnect("b01", "gs")
	f := NewFast(eng, net, 0.5)
	eng.Run(2)
	if loop, found := FindLoop(f, net.Nodes()); found {
		t.Errorf("dead-end topology reported as loop: %+v", loop)
	}
}

// TestDSDVSnapshotLoopFree churns a mesh and asserts the DSDV routing
// snapshot stays loop-free at every settle point — the
// sequence-number machinery exists precisely to prevent the
// count-to-infinity loops of plain distance-vector.
func TestDSDVSnapshotLoopFree(t *testing.T) {
	eng := sim.New(3)
	net := meshTopology(8)
	d := NewDSDV(eng, net, DefaultDSDVConfig())
	d.Start()
	eng.Run(30)
	for round := 0; round < 4; round++ {
		if round%2 == 0 {
			net.Disconnect("b08", "b07")
			net.Disconnect("b04", "b03")
		} else {
			net.Connect("b08", "b07")
			net.Connect("b04", "b03")
		}
		eng.Run(eng.Now() + 20)
		if loop, found := FindLoop(d, net.Nodes()); found {
			t.Fatalf("round %d: DSDV snapshot loops %v forwarding %s→%s",
				round, loop.Cycle, loop.Src, loop.Dst)
		}
	}
}

func contains(xs []string, want string) bool {
	for _, x := range xs {
		if x == want {
			return true
		}
	}
	return false
}
