package manet

import "testing"

// TestReachableAny checks the delivery invariant's connectivity
// oracle: multi-hop reachability to ANY destination in the set,
// partition detection, and the trivial src-in-dst case.
func TestReachableAny(t *testing.T) {
	// a—b—c   d—e   (two components)
	n := NewStaticNetwork()
	n.Connect("a", "b")
	n.Connect("b", "c")
	n.Connect("d", "e")

	gw := map[string]bool{"c": true, "e": true}
	cases := []struct {
		src  string
		dst  map[string]bool
		want bool
	}{
		{"a", gw, true},                          // multi-hop a→b→c
		{"d", gw, true},                          // direct d→e
		{"a", map[string]bool{"e": true}, false}, // across the partition
		{"c", gw, true},                          // src already a destination
		{"a", map[string]bool{}, false},          // empty destination set
		{"a", map[string]bool{"z": true}, false}, // destination not in graph
	}
	for _, tc := range cases {
		if got := ReachableAny(n, tc.src, tc.dst); got != tc.want {
			t.Errorf("ReachableAny(%s, %v) = %v, want %v", tc.src, tc.dst, got, tc.want)
		}
	}

	// Severing the bridge flips the verdict.
	n.Disconnect("b", "c")
	if ReachableAny(n, "a", gw) {
		t.Error("a still reaches a gateway after the bridge was cut")
	}
}
