package manet

import (
	"sort"

	"minkowski/internal/sim"
)

// DSDV is Destination-Sequenced Distance-Vector routing [Perkins &
// Bhagwat]: every node periodically broadcasts its full routing table
// with per-destination sequence numbers; receivers adopt routes with
// newer sequence numbers or equal-sequence shorter hop counts.
// Appendix D found DSDV converged well but carried more overhead than
// AODV because it builds routes between *all* pairs, which Loon did
// not need.
type DSDV struct {
	eng *sim.Engine
	net Network
	cfg DSDVConfig

	nodes map[string]*dsdvNode
	stats Stats
}

// DSDVConfig tunes the protocol.
type DSDVConfig struct {
	// UpdateIntervalS is the full-table broadcast period.
	UpdateIntervalS float64
	// RouteLifetimeS expires routes not refreshed.
	RouteLifetimeS float64
	// LossProb is per-hop control loss.
	LossProb float64
	// HeaderBytes + EntryBytes·n is the update size.
	HeaderBytes, EntryBytes int
}

// DefaultDSDVConfig returns conventional parameters.
func DefaultDSDVConfig() DSDVConfig {
	return DSDVConfig{
		UpdateIntervalS: 2.0,
		RouteLifetimeS:  8.0,
		LossProb:        0.01,
		HeaderBytes:     12,
		EntryBytes:      12,
	}
}

type dsdvRoute struct {
	nextHop string
	hops    int
	seqno   uint64
	heardAt float64
}

type dsdvNode struct {
	id     string
	seqno  uint64
	routes map[string]*dsdvRoute
}

// NewDSDV creates the protocol.
func NewDSDV(eng *sim.Engine, net Network, cfg DSDVConfig) *DSDV {
	return &DSDV{eng: eng, net: net, cfg: cfg, nodes: make(map[string]*dsdvNode)}
}

// Name implements Router.
func (d *DSDV) Name() string { return "dsdv" }

// Stats implements Router.
func (d *DSDV) Stats() Stats { return d.stats }

func (d *DSDV) node(id string) *dsdvNode {
	n, ok := d.nodes[id]
	if !ok {
		n = &dsdvNode{id: id, routes: make(map[string]*dsdvRoute)}
		d.nodes[id] = n
	}
	return n
}

// advEntry is one row of a table advertisement.
type advEntry struct {
	dst   string
	hops  int
	seqno uint64
}

// Start implements Router: periodic full-table broadcasts.
func (d *DSDV) Start() {
	d.eng.Every(d.cfg.UpdateIntervalS, func() bool {
		now := d.eng.Now()
		for _, id := range d.net.Nodes() {
			n := d.node(id)
			n.seqno += 2 // even seqnos: destination-generated
			// Expire dead routes first.
			for dst, r := range n.routes {
				if now-r.heardAt > d.cfg.RouteLifetimeS || !stillAdjacent(d.net, id, r.nextHop) {
					delete(n.routes, dst)
				}
			}
			// Build the advertisement: self + all known routes, in
			// sorted destination order so the wire layout (and any
			// receiver tie-break) is independent of map iteration.
			dsts := make([]string, 0, len(n.routes))
			for dst := range n.routes {
				dsts = append(dsts, dst)
			}
			sort.Strings(dsts)
			adv := []advEntry{{dst: id, hops: 0, seqno: n.seqno}}
			for _, dst := range dsts {
				r := n.routes[dst]
				adv = append(adv, advEntry{dst: dst, hops: r.hops, seqno: r.seqno})
			}
			size := d.cfg.HeaderBytes + d.cfg.EntryBytes*len(adv)
			for _, nb := range d.net.Neighbors(id) {
				nb := nb
				advCopy := make([]advEntry, len(adv))
				copy(advCopy, adv)
				d.stats.MessagesSent++
				d.stats.BytesSent += int64(size)
				deliver(d.eng, d.net, d.cfg.LossProb, id, nb, func() {
					if !stillAdjacent(d.net, nb, id) {
						return
					}
					d.receive(nb, id, advCopy)
				})
			}
		}
		return true
	})
}

// receive merges a neighbor's advertisement.
func (d *DSDV) receive(at, via string, adv []advEntry) {
	n := d.node(at)
	now := d.eng.Now()
	for _, e := range adv {
		if e.dst == at {
			continue
		}
		cand := &dsdvRoute{nextHop: via, hops: e.hops + 1, seqno: e.seqno, heardAt: now}
		cur := n.routes[e.dst]
		if cur == nil || e.seqno > cur.seqno || (e.seqno == cur.seqno && cand.hops < cur.hops) {
			n.routes[e.dst] = cand
		} else if cur.nextHop == via && e.seqno >= cur.seqno {
			cur.heardAt = now
		}
	}
}

// NextHop implements Router.
func (d *DSDV) NextHop(src, dst string) (string, bool) {
	n, ok := d.nodes[src]
	if !ok {
		return "", false
	}
	r, ok := n.routes[dst]
	if !ok {
		return "", false
	}
	if !stillAdjacent(d.net, src, r.nextHop) {
		return "", false
	}
	return r.nextHop, true
}
