package manet

import (
	"fmt"
	"testing"

	"minkowski/internal/sim"
)

// lineTopology builds gs - b1 - b2 - ... - bn.
func lineTopology(n int) *StaticNetwork {
	net := NewStaticNetwork()
	prev := "gs"
	net.AddNode(prev)
	for i := 1; i <= n; i++ {
		id := fmt.Sprintf("b%02d", i)
		net.Connect(prev, id)
		prev = id
	}
	return net
}

// meshTopology builds a gs plus a grid-ish redundant mesh of n
// balloons: each balloon i links to i-1 and i-2.
func meshTopology(n int) *StaticNetwork {
	net := NewStaticNetwork()
	net.AddNode("gs")
	ids := []string{"gs"}
	for i := 1; i <= n; i++ {
		id := fmt.Sprintf("b%02d", i)
		net.Connect(ids[len(ids)-1], id)
		if len(ids) >= 2 {
			net.Connect(ids[len(ids)-2], id)
		}
		ids = append(ids, id)
	}
	return net
}

// protocols returns one of each message-level protocol, started.
func protocols(eng *sim.Engine, net Network) []Router {
	b := NewBATMAN(eng, net, DefaultBATMANConfig())
	a := NewAODV(eng, net, DefaultAODVConfig())
	d := NewDSDV(eng, net, DefaultDSDVConfig())
	o := NewOLSR(eng, net, DefaultOLSRConfig())
	return []Router{b, a, d, o}
}

func TestAllProtocolsConvergeOnLine(t *testing.T) {
	for _, mk := range []func(*sim.Engine, Network) Router{
		func(e *sim.Engine, n Network) Router { return NewBATMAN(e, n, DefaultBATMANConfig()) },
		func(e *sim.Engine, n Network) Router {
			a := NewAODV(e, n, DefaultAODVConfig())
			a.Interest("b05", "gs")
			return a
		},
		func(e *sim.Engine, n Network) Router { return NewDSDV(e, n, DefaultDSDVConfig()) },
		func(e *sim.Engine, n Network) Router { return NewOLSR(e, n, DefaultOLSRConfig()) },
	} {
		eng := sim.New(1)
		net := lineTopology(5)
		r := mk(eng, net)
		r.Start()
		eng.Run(30)
		t.Run(r.Name(), func(t *testing.T) {
			path, ok := PathFrom(r, "b05", "gs")
			if !ok {
				t.Fatalf("%s: no route from b05 to gs after 30 s", r.Name())
			}
			if len(path) != 6 {
				t.Errorf("%s: path %v, want 6 hops down the line", r.Name(), path)
			}
		})
	}
}

func TestBATMANRepairsAfterLinkFailure(t *testing.T) {
	eng := sim.New(1)
	net := meshTopology(6)
	b := NewBATMAN(eng, net, DefaultBATMANConfig())
	b.Start()
	eng.Run(15)
	if !HasRoute(b, "b06", "gs") {
		t.Fatal("precondition: route up")
	}
	// Cut the direct path b06-b05; the redundant b06-b04 link should
	// carry the repaired route within a few OGM intervals.
	net.Disconnect("b06", "b05")
	eng.Run(15 + 6)
	if !HasRoute(b, "b06", "gs") {
		t.Error("batman should repair around the cut within ~6 s")
	}
}

func TestBATMANPurgesPartitionedRoutes(t *testing.T) {
	eng := sim.New(1)
	net := lineTopology(3)
	b := NewBATMAN(eng, net, DefaultBATMANConfig())
	b.Start()
	eng.Run(10)
	if !HasRoute(b, "b03", "gs") {
		t.Fatal("precondition")
	}
	// Partition b03 entirely.
	net.Disconnect("b03", "b02")
	eng.Run(10 + 10)
	if HasRoute(b, "b03", "gs") {
		t.Error("partitioned node must lose its route")
	}
}

func TestBATMANBestGateway(t *testing.T) {
	eng := sim.New(1)
	net := NewStaticNetwork()
	// b1 is adjacent to gsA; gsB is 3 hops away: TQ must prefer gsA.
	net.Connect("b1", "gsA")
	net.Connect("b1", "b2")
	net.Connect("b2", "b3")
	net.Connect("b3", "gsB")
	b := NewBATMAN(eng, net, DefaultBATMANConfig())
	b.Start()
	eng.Run(15)
	gw, ok := b.BestGateway("b1", []string{"gsA", "gsB"})
	if !ok || gw != "gsA" {
		t.Errorf("best gateway = %q (ok=%v), want gsA", gw, ok)
	}
	if b.GatewayTQ("b1", "gsA") <= b.GatewayTQ("b1", "gsB") {
		t.Error("1-hop TQ must exceed 3-hop TQ")
	}
}

func TestAODVOnDemandOnly(t *testing.T) {
	eng := sim.New(1)
	net := lineTopology(5)
	a := NewAODV(eng, net, DefaultAODVConfig())
	a.Start()
	eng.Run(10)
	// No interest registered: no route state toward gs at b05.
	if HasRoute(a, "b05", "gs") {
		t.Error("AODV must not build routes without demand")
	}
	a.Interest("b05", "gs")
	eng.Run(20)
	if !HasRoute(a, "b05", "gs") {
		t.Error("AODV must discover the route after Interest")
	}
}

func TestAODVRediscoversAfterBreak(t *testing.T) {
	eng := sim.New(1)
	net := meshTopology(6)
	a := NewAODV(eng, net, DefaultAODVConfig())
	a.Interest("b06", "gs")
	a.Start()
	eng.Run(15)
	if !HasRoute(a, "b06", "gs") {
		t.Fatal("precondition")
	}
	net.Disconnect("b06", "b05")
	net.Disconnect("b05", "b04") // force a real reroute
	eng.Run(15 + 10)
	if !HasRoute(a, "b06", "gs") {
		t.Error("AODV should rediscover within ~10 s")
	}
}

func TestDSDVBuildsAllPairs(t *testing.T) {
	eng := sim.New(1)
	net := lineTopology(4)
	d := NewDSDV(eng, net, DefaultDSDVConfig())
	d.Start()
	eng.Run(30)
	// DSDV is proactive for all destinations: even b01→b04 exists.
	if !HasRoute(d, "b01", "b04") {
		t.Error("DSDV should have routes between arbitrary pairs")
	}
	if !HasRoute(d, "b04", "gs") {
		t.Error("DSDV route to gs missing")
	}
}

func TestOLSRComputesShortestPaths(t *testing.T) {
	eng := sim.New(1)
	net := meshTopology(6)
	o := NewOLSR(eng, net, DefaultOLSRConfig())
	o.Start()
	eng.Run(40)
	path, ok := PathFrom(o, "b06", "gs")
	if !ok {
		t.Fatal("OLSR has no route b06→gs after 40 s")
	}
	// Mesh topology: shortest path uses the i-2 shortcuts: b06 → b04
	// → b02 → gs = 4 nodes; allow one extra hop for MPR quirks.
	if len(path) > 5 {
		t.Errorf("OLSR path %v longer than shortest", path)
	}
}

func TestAODVLowerOverheadThanDSDV(t *testing.T) {
	// Appendix D: "AODV protocol design resulted in overall lower
	// overhead (no need to build a full routing table for arbitrary
	// balloon-to-balloon connectivity)". One gateway interest per
	// balloon vs DSDV's all-pairs tables.
	eng := sim.New(1)
	net := meshTopology(12)
	a := NewAODV(eng, net, DefaultAODVConfig())
	for i := 1; i <= 12; i++ {
		a.Interest(fmt.Sprintf("b%02d", i), "gs")
	}
	a.Start()
	d := NewDSDV(eng, net, DefaultDSDVConfig())
	d.Start()
	eng.Run(120)
	ab, db := a.Stats().BytesSent, d.Stats().BytesSent
	if ab >= db {
		t.Errorf("AODV bytes (%d) should be below DSDV bytes (%d)", ab, db)
	}
}

func TestFastRouterConvergenceWindow(t *testing.T) {
	eng := sim.New(1)
	net := meshTopology(6)
	f := NewFast(eng, net, 2.0)
	if !HasRoute(f, "b06", "gs") {
		t.Fatal("initial routes missing")
	}
	// Cut b06's primary link; before convergence the stale next hop
	// fails, after convergence the redundant path carries.
	net.Disconnect("b06", "b05")
	f.TopologyChanged()
	// Depending on tie-breaks the stale route may have used b05
	// (broken now) or b04 (still fine). Advance past convergence:
	// route must exist either way.
	eng.Run(eng.Now() + 3)
	if !HasRoute(f, "b06", "gs") {
		t.Error("fast router must repair after the convergence window")
	}
	// New link visibility: connect a shortcut and check it's unused
	// until converged.
	net.Connect("b06", "gs")
	f.TopologyChanged()
	preLen := 0
	if p, ok := PathFrom(f, "b06", "gs"); ok {
		preLen = len(p)
	}
	eng.Run(eng.Now() + 3)
	p, ok := PathFrom(f, "b06", "gs")
	if !ok || len(p) != 2 {
		t.Errorf("after convergence the direct link should be used, got %v", p)
	}
	if preLen == 2 {
		t.Error("direct link used before convergence window passed")
	}
}

func TestFastRouterPartition(t *testing.T) {
	eng := sim.New(1)
	net := lineTopology(3)
	f := NewFast(eng, net, 1.0)
	net.Disconnect("b01", "gs")
	f.TopologyChanged()
	eng.Run(5)
	if HasRoute(f, "b03", "gs") {
		t.Error("partitioned fast route must disappear")
	}
}

func TestPathFromDetectsLoops(t *testing.T) {
	// A malicious router that always points back and forth.
	r := loopRouter{}
	if _, ok := PathFrom(r, "a", "z"); ok {
		t.Error("loop must be detected")
	}
}

type loopRouter struct{}

func (loopRouter) Name() string { return "loop" }
func (loopRouter) Start()       {}
func (loopRouter) Stats() Stats { return Stats{} }
func (loopRouter) NextHop(src, dst string) (string, bool) {
	if src == "a" {
		return "b", true
	}
	return "a", true
}

func TestPathFromTrivial(t *testing.T) {
	r := loopRouter{}
	p, ok := PathFrom(r, "x", "x")
	if !ok || len(p) != 1 {
		t.Error("src == dst must be a length-1 path")
	}
}

// TestProtocolComparison is the Appendix D experiment in miniature:
// all four protocols on the same churning topology; assert the
// paper's qualitative findings.
func TestProtocolComparison(t *testing.T) {
	if testing.Short() {
		t.Skip("comparison is slow")
	}
	type result struct {
		name      string
		available float64
		bytes     int64
	}
	var results []result
	for _, name := range []string{"batman", "aodv", "dsdv", "olsr"} {
		eng := sim.New(42)
		net := meshTopology(10)
		var r Router
		switch name {
		case "batman":
			r = NewBATMAN(eng, net, DefaultBATMANConfig())
		case "aodv":
			a := NewAODV(eng, net, DefaultAODVConfig())
			for i := 1; i <= 10; i++ {
				a.Interest(fmt.Sprintf("b%02d", i), "gs")
			}
			r = a
		case "dsdv":
			r = NewDSDV(eng, net, DefaultDSDVConfig())
		case "olsr":
			r = NewOLSR(eng, net, DefaultOLSRConfig())
		}
		r.Start()
		eng.Run(30) // warm-up
		// Churn: every 20 s cut and restore links, sampling route
		// availability from b10 each second.
		samples, available := 0, 0
		for round := 0; round < 6; round++ {
			if round%2 == 0 {
				net.Disconnect("b10", "b09")
			} else {
				net.Connect("b10", "b09")
			}
			for s := 0; s < 20; s++ {
				eng.Run(eng.Now() + 1)
				samples++
				if HasRoute(r, "b10", "gs") {
					available++
				}
			}
		}
		results = append(results, result{name, float64(available) / float64(samples), r.Stats().BytesSent})
	}
	for _, res := range results {
		t.Logf("%s: availability=%.2f bytes=%d", res.name, res.available, res.bytes)
		if res.available < 0.5 {
			t.Errorf("%s availability %.2f — should repair around churn", res.name, res.available)
		}
	}
	// Paper's qualitative finding: AODV overhead < DSDV overhead.
	var aodvBytes, dsdvBytes int64
	for _, res := range results {
		switch res.name {
		case "aodv":
			aodvBytes = res.bytes
		case "dsdv":
			dsdvBytes = res.bytes
		}
	}
	if aodvBytes >= dsdvBytes {
		t.Errorf("AODV bytes (%d) should be below DSDV (%d)", aodvBytes, dsdvBytes)
	}
}

func BenchmarkBATMANSecond(b *testing.B) {
	eng := sim.New(1)
	net := meshTopology(20)
	r := NewBATMAN(eng, net, DefaultBATMANConfig())
	r.Start()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eng.Run(eng.Now() + 1)
	}
}

func BenchmarkFastRecompute(b *testing.B) {
	eng := sim.New(1)
	net := meshTopology(30)
	f := NewFast(eng, net, 1.0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.recompute()
	}
}
