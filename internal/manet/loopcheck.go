package manet

// Loop describes a forwarding cycle found in a router snapshot: the
// NextHop walk from Src toward Dst revisited a node before reaching
// Dst. Cycle lists the nodes in walk order, ending at the first
// repeated node (so Cycle[len-1] == an earlier element).
type Loop struct {
	Src, Dst string
	Cycle    []string
}

// FindLoop walks NextHop for every ordered (src, dst) pair over nodes
// and returns the first forwarding loop it finds. Unlike PathFrom —
// which conflates "no route" and "loop" into a single false — this
// distinguishes a dead-end (fine: the route is simply absent) from a
// cycle (an invariant violation: packets would orbit forever). The
// scan order is deterministic given a sorted node list.
func FindLoop(r Router, nodes []string) (Loop, bool) {
	for _, src := range nodes {
		for _, dst := range nodes {
			if src == dst {
				continue
			}
			if loop, ok := walkForLoop(r, src, dst); ok {
				return loop, true
			}
		}
	}
	return Loop{}, false
}

// walkForLoop follows NextHop from src toward dst, reporting a cycle
// if the walk revisits a node. A missing next hop ends the walk
// without a loop.
func walkForLoop(r Router, src, dst string) (Loop, bool) {
	seen := map[string]bool{src: true}
	path := []string{src}
	cur := src
	// Walk bound: any simple path is shorter than the node count the
	// router can know about; 4096 comfortably exceeds every scenario.
	for i := 0; i < 4096; i++ {
		nh, ok := r.NextHop(cur, dst)
		if !ok {
			return Loop{}, false // dead end, not a loop
		}
		path = append(path, nh)
		if nh == dst {
			return Loop{}, false
		}
		if seen[nh] {
			return Loop{Src: src, Dst: dst, Cycle: path}, true
		}
		seen[nh] = true
		cur = nh
	}
	return Loop{Src: src, Dst: dst, Cycle: path}, true
}
