package manet

// ReachableAny reports whether any node in dst is reachable from src
// over the network's current adjacency (BFS over Neighbors, which on a
// FabricNet already filters dead nodes and deaf directions). It is the
// ground-truth connectivity oracle for the data-plane delivery
// invariant: a balloon whose BFS to every live gateway fails sits in a
// genuine partition, and undelivered traffic for it is excused.
//
// The traversal is deterministic: Neighbors returns sorted slices and
// the frontier is a FIFO queue, so no map-iteration order leaks out.
func ReachableAny(n Network, src string, dst map[string]bool) bool {
	if dst[src] {
		return true
	}
	visited := map[string]bool{src: true}
	queue := []string{src}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		for _, nb := range n.Neighbors(cur) {
			if visited[nb] {
				continue
			}
			if dst[nb] {
				return true
			}
			visited[nb] = true
			queue = append(queue, nb)
		}
	}
	return false
}
