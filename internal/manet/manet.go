// Package manet implements the mobile ad-hoc routing protocols of the
// paper's Tier 1 control plane (§4.1) and Appendix D's protocol
// comparison: a batman-adv-style AODV-descendant (Loon's production
// choice), classic AODV, DSDV, and OLSR — all message-level
// implementations running over the simulated link layer.
//
// The routing domain spans "from ground stations up to balloons and
// among connected balloons"; its job is to give every balloon a path
// to a ground-station *gateway* (and from there to an SDN endpoint)
// that repairs faster than the datacenter controller can react.
//
// For multi-day simulations the package also provides Fast, an
// oracle router with a calibrated convergence delay, so the big
// experiments don't pay for per-second OGM floods.
package manet

import (
	"sort"

	"minkowski/internal/sim"
)

// Network is the link-layer view a routing protocol runs over. The
// radio fabric implements it for production use; tests and the
// Appendix D bench drive it with synthetic topologies.
type Network interface {
	// Nodes returns all node IDs, sorted.
	Nodes() []string
	// Neighbors returns the nodes adjacent to id over installed
	// links, sorted.
	Neighbors(id string) []string
	// Latency returns the one-hop delivery latency in seconds between
	// adjacent nodes (typically sub-millisecond propagation plus
	// serialization).
	Latency(a, b string) float64
}

// Stats counts a protocol's control-plane cost.
type Stats struct {
	// MessagesSent counts every control message transmission
	// (per-hop, so a flood across k links counts k).
	MessagesSent int64
	// BytesSent is the same in bytes.
	BytesSent int64
}

// Router is a routing protocol instance managing per-node state for
// every node in the network.
type Router interface {
	// Name identifies the protocol.
	Name() string
	// Start begins protocol operation (periodic beacons etc.).
	Start()
	// NextHop returns the next hop from src toward dst, if src
	// currently has a route.
	NextHop(src, dst string) (string, bool)
	// Stats returns cumulative control-plane cost.
	Stats() Stats
}

// PathFrom walks NextHop from src toward dst and returns the node
// path if the route completes without loops. This is how the
// simulation "forwards" control-plane traffic.
func PathFrom(r Router, src, dst string) ([]string, bool) {
	if src == dst {
		return []string{src}, true
	}
	path := []string{src}
	seen := map[string]bool{src: true}
	cur := src
	for i := 0; i < 64; i++ {
		nh, ok := r.NextHop(cur, dst)
		if !ok {
			return nil, false
		}
		if seen[nh] {
			return nil, false // loop
		}
		seen[nh] = true
		path = append(path, nh)
		if nh == dst {
			return path, true
		}
		cur = nh
	}
	return nil, false
}

// HasRoute reports whether src can currently reach dst hop by hop.
func HasRoute(r Router, src, dst string) bool {
	_, ok := PathFrom(r, src, dst)
	return ok
}

// deliver schedules the delivery of a control message from a to its
// neighbor b, applying latency and the loss probability.
func deliver(eng *sim.Engine, net Network, lossProb float64, a, b string, fn func()) {
	if lossProb > 0 && eng.RNG("manet-loss").Float64() < lossProb {
		return
	}
	lat := net.Latency(a, b)
	if lat <= 0 {
		lat = 0.003
	}
	eng.After(lat, func() { fn() })
}

// stillAdjacent checks current adjacency (links may have died while a
// message was in flight).
func stillAdjacent(net Network, a, b string) bool {
	for _, n := range net.Neighbors(a) {
		if n == b {
			return true
		}
	}
	return false
}

// sortedCopy returns a sorted copy of ids.
func sortedCopy(ids []string) []string {
	out := make([]string, len(ids))
	copy(out, ids)
	sort.Strings(out)
	return out
}

// --- Static test topology --------------------------------------------

// StaticNetwork is a mutable in-memory Network for tests and benches.
type StaticNetwork struct {
	nodes map[string]bool
	adj   map[string]map[string]bool
	// LatencyS is the uniform one-hop latency.
	LatencyS float64
}

// NewStaticNetwork creates an empty topology.
func NewStaticNetwork() *StaticNetwork {
	return &StaticNetwork{
		nodes:    make(map[string]bool),
		adj:      make(map[string]map[string]bool),
		LatencyS: 0.003,
	}
}

// AddNode adds a node.
func (s *StaticNetwork) AddNode(id string) {
	s.nodes[id] = true
	if s.adj[id] == nil {
		s.adj[id] = make(map[string]bool)
	}
}

// Connect adds a bidirectional link.
func (s *StaticNetwork) Connect(a, b string) {
	s.AddNode(a)
	s.AddNode(b)
	s.adj[a][b] = true
	s.adj[b][a] = true
}

// Disconnect removes a link.
func (s *StaticNetwork) Disconnect(a, b string) {
	if s.adj[a] != nil {
		delete(s.adj[a], b)
	}
	if s.adj[b] != nil {
		delete(s.adj[b], a)
	}
}

// ConnectOneWay adds only the a → b direction (asymmetric-link
// topologies for partial-partition tests).
func (s *StaticNetwork) ConnectOneWay(a, b string) {
	s.AddNode(a)
	s.AddNode(b)
	s.adj[a][b] = true
}

// DisconnectOneWay removes only the a → b direction, leaving b → a
// intact: the static-topology equivalent of a partial partition.
func (s *StaticNetwork) DisconnectOneWay(a, b string) {
	if s.adj[a] != nil {
		delete(s.adj[a], b)
	}
}

// Nodes implements Network.
func (s *StaticNetwork) Nodes() []string {
	out := make([]string, 0, len(s.nodes))
	for id := range s.nodes {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// Neighbors implements Network.
func (s *StaticNetwork) Neighbors(id string) []string {
	out := make([]string, 0, len(s.adj[id]))
	for n := range s.adj[id] {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Latency implements Network.
func (s *StaticNetwork) Latency(a, b string) float64 { return s.LatencyS }
