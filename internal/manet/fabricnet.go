package manet

import (
	"minkowski/internal/platform"
	"minkowski/internal/radio"
)

// FabricNet adapts the radio fabric + platform fleet to the Network
// interface: the MANET runs over installed links between operational
// nodes.
type FabricNet struct {
	Fabric *radio.Fabric
	Fleet  *platform.Fleet
}

// Nodes implements Network with the operational node set.
func (fn *FabricNet) Nodes() []string {
	ops := fn.Fleet.OperationalNodes()
	out := make([]string, 0, len(ops))
	for _, n := range ops {
		out = append(out, n.ID)
	}
	return out // already deterministic order from Fleet.Nodes
}

// Neighbors implements Network from installed links.
func (fn *FabricNet) Neighbors(id string) []string {
	return fn.Fabric.Neighbors(id)
}

// Latency implements Network: propagation plus a processing floor.
func (fn *FabricNet) Latency(a, b string) float64 {
	if l, ok := fn.Fabric.LinkBetween(a, b); ok {
		return radio.PropagationDelay(l) + 0.002
	}
	return 0.003
}
