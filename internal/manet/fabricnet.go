package manet

import (
	"minkowski/internal/platform"
	"minkowski/internal/radio"
)

// FabricNet adapts the radio fabric + platform fleet to the Network
// interface: the MANET runs over installed links between operational
// nodes. Adjacency is DIRECTED: a partial partition (chaos) can
// silence one direction of a physical link while the reverse keeps
// delivering, so Neighbors(a) lists the nodes a can currently
// *transmit to*.
type FabricNet struct {
	Fabric *radio.Fabric
	Fleet  *platform.Fleet
	// deaf[from][to] marks the from → to direction blocked: to no
	// longer hears from, even though the radio link is installed.
	deaf map[string]map[string]bool
}

// SetDeaf blocks (or restores) one direction of the mesh: while
// blocked, messages from → to are lost. The reverse direction is
// unaffected (set both to model a full symmetric partition of the
// pair).
func (fn *FabricNet) SetDeaf(from, to string, blocked bool) {
	if blocked {
		if fn.deaf == nil {
			fn.deaf = map[string]map[string]bool{}
		}
		if fn.deaf[from] == nil {
			fn.deaf[from] = map[string]bool{}
		}
		fn.deaf[from][to] = true
		return
	}
	if m := fn.deaf[from]; m != nil {
		delete(m, to)
		if len(m) == 0 {
			delete(fn.deaf, from)
		}
	}
}

// Deaf reports whether the from → to direction is currently blocked.
func (fn *FabricNet) Deaf(from, to string) bool { return fn.deaf[from][to] }

// Nodes implements Network with the operational node set.
func (fn *FabricNet) Nodes() []string {
	ops := fn.Fleet.OperationalNodes()
	out := make([]string, 0, len(ops))
	for _, n := range ops {
		out = append(out, n.ID)
	}
	return out // already deterministic order from Fleet.Nodes
}

// Neighbors implements Network from installed links, minus the
// directions a partial partition has silenced.
func (fn *FabricNet) Neighbors(id string) []string {
	nbs := fn.Fabric.Neighbors(id)
	blocked := fn.deaf[id]
	if len(blocked) == 0 {
		return nbs
	}
	out := make([]string, 0, len(nbs))
	for _, n := range nbs {
		if !blocked[n] {
			out = append(out, n)
		}
	}
	return out
}

// Latency implements Network: propagation plus a processing floor.
func (fn *FabricNet) Latency(a, b string) float64 {
	if l, ok := fn.Fabric.LinkBetween(a, b); ok {
		return radio.PropagationDelay(l) + 0.002
	}
	return 0.003
}
