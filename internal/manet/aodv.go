package manet

import (
	"minkowski/internal/sim"
)

// AODV is the classic on-demand distance-vector protocol [Perkins &
// Royer]: routes are discovered only when needed by flooding a Route
// Request (RREQ); the destination (or a node with a fresh route)
// unicasts a Route Reply (RREP) back along the reverse path; broken
// links trigger Route Errors (RERR) and re-discovery. Appendix D:
// AODV converged well and had lower overhead than DSDV because Loon
// nodes only need routes to a handful of SDN endpoints, not to every
// other balloon.
type AODV struct {
	eng *sim.Engine
	net Network
	cfg AODVConfig

	nodes map[string]*aodvNode
	stats Stats
	// interests are (src, dst) pairs the simulation keeps alive:
	// each src re-discovers dst whenever its route breaks.
	interests map[string][]string // src -> dsts
}

// AODVConfig tunes the protocol.
type AODVConfig struct {
	// HelloIntervalS is the neighbor-sensing beacon period.
	HelloIntervalS float64
	// RouteLifetimeS expires unused routes.
	RouteLifetimeS float64
	// RediscoverBackoffS is the delay between a route break and the
	// next RREQ.
	RediscoverBackoffS float64
	// LossProb is per-hop control loss.
	LossProb float64
	// Message sizes (bytes, RFC 3561 formats).
	RREQBytes, RREPBytes, RERRBytes, HelloBytes int
}

// DefaultAODVConfig returns RFC-flavored defaults.
func DefaultAODVConfig() AODVConfig {
	return AODVConfig{
		HelloIntervalS:     1.0,
		RouteLifetimeS:     10.0,
		RediscoverBackoffS: 0.5,
		LossProb:           0.01,
		RREQBytes:          24, RREPBytes: 20, RERRBytes: 20, HelloBytes: 12,
	}
}

type aodvRoute struct {
	nextHop string
	seqno   uint64
	hops    int
	expires float64
}

type aodvNode struct {
	id     string
	seqno  uint64
	rreqID uint64
	routes map[string]*aodvRoute
	// seenRREQ suppresses duplicate flood processing: key origin,
	// value highest rreqID seen.
	seenRREQ map[string]uint64
	// pendingDiscovery marks destinations with an RREQ in flight.
	pendingDiscovery map[string]bool
}

// NewAODV creates the protocol.
func NewAODV(eng *sim.Engine, net Network, cfg AODVConfig) *AODV {
	return &AODV{
		eng: eng, net: net, cfg: cfg,
		nodes:     make(map[string]*aodvNode),
		interests: make(map[string][]string),
	}
}

// Name implements Router.
func (a *AODV) Name() string { return "aodv" }

// Stats implements Router.
func (a *AODV) Stats() Stats { return a.stats }

func (a *AODV) node(id string) *aodvNode {
	n, ok := a.nodes[id]
	if !ok {
		n = &aodvNode{
			id:               id,
			routes:           make(map[string]*aodvRoute),
			seenRREQ:         make(map[string]uint64),
			pendingDiscovery: make(map[string]bool),
		}
		a.nodes[id] = n
	}
	return n
}

// Interest registers that src needs a persistent route to dst (e.g.
// a balloon's gRPC connection to an SDN endpoint). AODV maintains it:
// discovery now, re-discovery on break.
func (a *AODV) Interest(src, dst string) {
	a.interests[src] = append(a.interests[src], dst)
	a.discover(src, dst)
}

// Start implements Router: periodic hello beacons maintain neighbor
// liveness and expire broken routes; broken interests re-discover.
func (a *AODV) Start() {
	a.eng.Every(a.cfg.HelloIntervalS, func() bool {
		now := a.eng.Now()
		for _, id := range a.net.Nodes() {
			n := a.node(id)
			// Hello cost: one broadcast per node per interval.
			nbrs := a.net.Neighbors(id)
			a.stats.MessagesSent += int64(len(nbrs))
			a.stats.BytesSent += int64(len(nbrs) * a.cfg.HelloBytes)
			// Expire routes whose next hop is gone or lifetime passed.
			for dst, r := range n.routes {
				if now > r.expires || !stillAdjacent(a.net, id, r.nextHop) {
					delete(n.routes, dst)
					// RERR to interested upstreams (simplified: cost
					// accounting only; re-discovery is driven below).
					a.stats.MessagesSent++
					a.stats.BytesSent += int64(a.cfg.RERRBytes)
				}
			}
		}
		// Keep interests alive.
		for src, dsts := range a.interests {
			n := a.node(src)
			for _, dst := range dsts {
				if _, ok := n.routes[dst]; !ok && !n.pendingDiscovery[dst] {
					src, dst := src, dst
					n.pendingDiscovery[dst] = true
					a.eng.After(a.cfg.RediscoverBackoffS, func() {
						a.node(src).pendingDiscovery[dst] = false
						a.discover(src, dst)
					})
				}
			}
		}
		return true
	})
}

// discover floods an RREQ from src for dst.
func (a *AODV) discover(src, dst string) {
	n := a.node(src)
	n.rreqID++
	n.seqno++
	a.forwardRREQ(src, src, dst, n.rreqID, 0, src)
}

// forwardRREQ continues an RREQ flood. at is the current node, origin
// the requester, hops the distance from origin to at.
func (a *AODV) forwardRREQ(at, origin, dst string, rreqID uint64, hops int, skip string) {
	for _, nb := range a.net.Neighbors(at) {
		if nb == skip {
			continue
		}
		nb := nb
		a.stats.MessagesSent++
		a.stats.BytesSent += int64(a.cfg.RREQBytes)
		deliver(a.eng, a.net, a.cfg.LossProb, at, nb, func() {
			if !stillAdjacent(a.net, nb, at) {
				return
			}
			a.receiveRREQ(nb, at, origin, dst, rreqID, hops+1)
		})
	}
}

// receiveRREQ handles an RREQ at node `at` arriving from `via`.
func (a *AODV) receiveRREQ(at, via, origin, dst string, rreqID uint64, hops int) {
	if at == origin {
		return
	}
	n := a.node(at)
	// Install/refresh the reverse route to origin.
	now := a.eng.Now()
	rev := n.routes[origin]
	if rev == nil || hops < rev.hops {
		n.routes[origin] = &aodvRoute{nextHop: via, hops: hops, expires: now + a.cfg.RouteLifetimeS}
	} else {
		rev.expires = now + a.cfg.RouteLifetimeS
	}
	if at == dst {
		// Destination replies.
		a.node(dst).seqno++
		a.sendRREP(dst, origin, dst, 0)
		return
	}
	// Duplicate suppression for forwarding.
	if n.seenRREQ[origin] >= rreqID {
		return
	}
	n.seenRREQ[origin] = rreqID
	a.forwardRREQ(at, origin, dst, rreqID, hops, via)
}

// sendRREP unicasts a route reply from `at` back toward origin,
// installing forward routes to dst along the way.
func (a *AODV) sendRREP(at, origin, dst string, hopsFromDst int) {
	if at == origin {
		return
	}
	n := a.node(at)
	r, ok := n.routes[origin]
	if !ok || !stillAdjacent(a.net, at, r.nextHop) {
		return // reverse path gone; discovery will retry
	}
	nh := r.nextHop
	a.stats.MessagesSent++
	a.stats.BytesSent += int64(a.cfg.RREPBytes)
	deliver(a.eng, a.net, a.cfg.LossProb, at, nh, func() {
		if !stillAdjacent(a.net, nh, at) {
			return
		}
		m := a.node(nh)
		now := a.eng.Now()
		fwd := m.routes[dst]
		if fwd == nil || hopsFromDst+1 < fwd.hops {
			m.routes[dst] = &aodvRoute{nextHop: at, hops: hopsFromDst + 1, expires: now + a.cfg.RouteLifetimeS}
		} else {
			fwd.expires = now + a.cfg.RouteLifetimeS
		}
		a.sendRREP(nh, origin, dst, hopsFromDst+1)
	})
}

// NextHop implements Router.
func (a *AODV) NextHop(src, dst string) (string, bool) {
	n, ok := a.nodes[src]
	if !ok {
		return "", false
	}
	r, ok := n.routes[dst]
	if !ok || a.eng.Now() > r.expires {
		return "", false
	}
	if !stillAdjacent(a.net, src, r.nextHop) {
		return "", false
	}
	return r.nextHop, true
}
