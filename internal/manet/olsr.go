package manet

import (
	"sort"

	"minkowski/internal/sim"
)

// OLSR is the Optimized Link State Routing protocol [RFC 3626],
// simplified: nodes exchange HELLO messages to sense neighbors and
// select MultiPoint Relays (MPRs) covering their two-hop
// neighborhood; Topology Control (TC) messages flooded through MPRs
// give every node a partial link-state view from which it computes
// shortest-path routes. Appendix D found OLSR's convergence lagged
// AODV/DSDV in Loon's environment.
type OLSR struct {
	eng *sim.Engine
	net Network
	cfg OLSRConfig

	nodes map[string]*olsrNode
	stats Stats
}

// OLSRConfig tunes the protocol.
type OLSRConfig struct {
	// HelloIntervalS is the neighbor-sensing period.
	HelloIntervalS float64
	// TCIntervalS is the topology-control flood period.
	TCIntervalS float64
	// TopologyHoldS expires link-state entries.
	TopologyHoldS float64
	// LossProb is per-hop control loss.
	LossProb float64
	// HelloBytes + TC sizes.
	HelloBytes, TCHeaderBytes, TCEntryBytes int
}

// DefaultOLSRConfig returns RFC-flavored defaults.
func DefaultOLSRConfig() OLSRConfig {
	return OLSRConfig{
		HelloIntervalS: 2.0,
		TCIntervalS:    5.0,
		TopologyHoldS:  15.0,
		LossProb:       0.01,
		HelloBytes:     16, TCHeaderBytes: 16, TCEntryBytes: 8,
	}
}

type olsrNode struct {
	id string
	// mprSelectors: neighbors that chose this node as MPR.
	mprSelectors map[string]bool
	// topo[origin][neighbor] = when heard: the link-state database.
	topo map[string]map[string]float64
	// seenTC[origin] = highest TC seqno forwarded.
	seenTC map[string]uint64
	tcSeq  uint64
	// routes computed by dijkstra on topo.
	routes map[string]string // dst -> next hop
}

// NewOLSR creates the protocol.
func NewOLSR(eng *sim.Engine, net Network, cfg OLSRConfig) *OLSR {
	return &OLSR{eng: eng, net: net, cfg: cfg, nodes: make(map[string]*olsrNode)}
}

// Name implements Router.
func (o *OLSR) Name() string { return "olsr" }

// Stats implements Router.
func (o *OLSR) Stats() Stats { return o.stats }

func (o *OLSR) node(id string) *olsrNode {
	n, ok := o.nodes[id]
	if !ok {
		n = &olsrNode{
			id:           id,
			mprSelectors: make(map[string]bool),
			topo:         make(map[string]map[string]float64),
			seenTC:       make(map[string]uint64),
			routes:       make(map[string]string),
		}
		o.nodes[id] = n
	}
	return n
}

// Start implements Router.
func (o *OLSR) Start() {
	// HELLO + MPR selection.
	o.eng.Every(o.cfg.HelloIntervalS, func() bool {
		for _, id := range o.net.Nodes() {
			nbrs := o.net.Neighbors(id)
			o.stats.MessagesSent += int64(len(nbrs))
			o.stats.BytesSent += int64(len(nbrs) * (o.cfg.HelloBytes + 2*len(nbrs)))
			o.selectMPRs(id)
		}
		return true
	})
	// TC floods from nodes with MPR selectors.
	o.eng.Every(o.cfg.TCIntervalS, func() bool {
		for _, id := range o.net.Nodes() {
			n := o.node(id)
			if len(n.mprSelectors) == 0 {
				continue
			}
			n.tcSeq++
			sel := make([]string, 0, len(n.mprSelectors))
			for s := range n.mprSelectors {
				sel = append(sel, s)
			}
			sort.Strings(sel)
			o.floodTC(id, id, n.tcSeq, sel, "")
		}
		o.expireAndRecompute()
		return true
	})
}

// selectMPRs picks a greedy MPR set at a node covering its two-hop
// neighborhood, and marks selector state at the chosen MPRs.
func (o *OLSR) selectMPRs(id string) {
	one := o.net.Neighbors(id)
	oneSet := map[string]bool{}
	for _, n := range one {
		oneSet[n] = true
	}
	// Two-hop neighborhood (excluding self and one-hop).
	twoVia := map[string][]string{} // two-hop node -> one-hop relays
	for _, n := range one {
		for _, m := range o.net.Neighbors(n) {
			if m == id || oneSet[m] {
				continue
			}
			twoVia[m] = append(twoVia[m], n)
		}
	}
	// Greedy cover.
	uncovered := map[string]bool{}
	for m := range twoVia {
		uncovered[m] = true
	}
	mprs := map[string]bool{}
	for len(uncovered) > 0 {
		// Pick the neighbor covering the most uncovered two-hops
		// (ties by name for determinism).
		counts := map[string]int{}
		for m := range uncovered {
			for _, relay := range twoVia[m] {
				counts[relay]++
			}
		}
		bestRelay, bestCount := "", 0
		relays := make([]string, 0, len(counts))
		for r := range counts {
			relays = append(relays, r)
		}
		sort.Strings(relays)
		for _, r := range relays {
			if counts[r] > bestCount {
				bestRelay, bestCount = r, counts[r]
			}
		}
		if bestRelay == "" {
			break
		}
		mprs[bestRelay] = true
		for m := range uncovered {
			for _, relay := range twoVia[m] {
				if relay == bestRelay {
					delete(uncovered, m)
					break
				}
			}
		}
	}
	// Update selector state at the MPRs (conveyed in HELLOs).
	for _, n := range one {
		o.node(n).mprSelectors[id] = mprs[n]
		if !mprs[n] {
			delete(o.node(n).mprSelectors, id)
		}
	}
}

// floodTC distributes a TC message (origin advertises links to its
// selectors) through the MPR backbone.
func (o *OLSR) floodTC(from, origin string, seq uint64, selectors []string, skip string) {
	for _, nb := range o.net.Neighbors(from) {
		if nb == skip {
			continue
		}
		nb := nb
		o.stats.MessagesSent++
		o.stats.BytesSent += int64(o.cfg.TCHeaderBytes + o.cfg.TCEntryBytes*len(selectors))
		deliver(o.eng, o.net, o.cfg.LossProb, from, nb, func() {
			if !stillAdjacent(o.net, nb, from) {
				return
			}
			o.receiveTC(nb, from, origin, seq, selectors)
		})
	}
}

// receiveTC merges link state and forwards through MPRs.
func (o *OLSR) receiveTC(at, via, origin string, seq uint64, selectors []string) {
	if at == origin {
		return
	}
	n := o.node(at)
	now := o.eng.Now()
	if n.topo[origin] == nil {
		n.topo[origin] = make(map[string]float64)
	}
	for _, s := range selectors {
		n.topo[origin][s] = now
	}
	if n.seenTC[origin] >= seq {
		return
	}
	n.seenTC[origin] = seq
	// Only MPRs of the sender forward (via is the sender).
	if o.node(at).mprSelectors[via] {
		o.floodTC(at, origin, seq, selectors, via)
	}
}

// expireAndRecompute ages out stale topology and recomputes routes at
// every node.
func (o *OLSR) expireAndRecompute() {
	cutoff := o.eng.Now() - o.cfg.TopologyHoldS
	for _, id := range o.net.Nodes() {
		n := o.node(id)
		for origin, links := range n.topo {
			for dst, heard := range links {
				if heard < cutoff {
					delete(links, dst)
				}
			}
			if len(links) == 0 {
				delete(n.topo, origin)
			}
		}
		o.dijkstra(id)
	}
}

// dijkstra computes next hops at a node over its link-state view plus
// its live one-hop neighborhood (BFS: unit link costs).
func (o *OLSR) dijkstra(id string) {
	n := o.node(id)
	// Build adjacency: one-hop truth + advertised topology
	// (symmetrized).
	adj := map[string][]string{}
	addEdge := func(a, b string) {
		adj[a] = append(adj[a], b)
		adj[b] = append(adj[b], a)
	}
	for _, nb := range o.net.Neighbors(id) {
		addEdge(id, nb)
	}
	for origin, links := range n.topo {
		for dst := range links {
			addEdge(origin, dst)
		}
	}
	// BFS from id.
	type qe struct {
		node string
		via  string // first hop used
	}
	n.routes = make(map[string]string)
	visited := map[string]bool{id: true}
	queue := []qe{}
	firstHops := sortedCopy(o.net.Neighbors(id))
	for _, nb := range firstHops {
		if !visited[nb] {
			visited[nb] = true
			n.routes[nb] = nb
			queue = append(queue, qe{node: nb, via: nb})
		}
	}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		next := sortedCopy(adj[cur.node])
		for _, m := range next {
			if visited[m] {
				continue
			}
			visited[m] = true
			n.routes[m] = cur.via
			queue = append(queue, qe{node: m, via: cur.via})
		}
	}
}

// NextHop implements Router.
func (o *OLSR) NextHop(src, dst string) (string, bool) {
	n, ok := o.nodes[src]
	if !ok {
		return "", false
	}
	nh, ok := n.routes[dst]
	if !ok {
		return "", false
	}
	if !stillAdjacent(o.net, src, nh) {
		return "", false
	}
	return nh, true
}
