package manet

import (
	"minkowski/internal/sim"
)

// BATMAN is a batman-adv-style proactive distance-vector protocol:
// every node periodically floods an Originator Message (OGM); each
// receiver remembers which neighbor delivered the best (freshest,
// highest transmit-quality) copy of each originator's OGM and uses
// that neighbor as the next hop toward the originator. Routing "toward
// the best copy of your beacon" is loop-free and repairs as soon as
// the next beacon arrives over a surviving path — the property that
// let Loon's in-band control plane out-repair the datacenter TS-SDN.
type BATMAN struct {
	eng *sim.Engine
	net Network
	cfg BATMANConfig

	nodes map[string]*batmanNode
	stats Stats
}

// BATMANConfig tunes the protocol.
type BATMANConfig struct {
	// OGMIntervalS is the beacon period (batman-adv default: 1 s).
	OGMIntervalS float64
	// PurgeAfterS expires a route whose originator hasn't been heard.
	PurgeAfterS float64
	// HopPenalty multiplies TQ per hop (0..1).
	HopPenalty float64
	// LossProb is the per-hop control-message loss probability.
	LossProb float64
	// OGMBytes is the on-the-wire OGM size (batman-adv IV: ~24 bytes
	// + ethernet framing).
	OGMBytes int
}

// DefaultBATMANConfig matches batman-adv defaults.
func DefaultBATMANConfig() BATMANConfig {
	return BATMANConfig{
		OGMIntervalS: 1.0,
		PurgeAfterS:  5.0,
		HopPenalty:   0.85,
		LossProb:     0.01,
		OGMBytes:     52,
	}
}

type batmanRoute struct {
	nextHop string
	tq      float64
	seqno   uint64
	heardAt float64
}

type batmanNode struct {
	id    string
	seqno uint64
	// routes[originator] is the best-known route.
	routes map[string]*batmanRoute
	// seen[originator] is the highest seqno rebroadcast (flood
	// suppression).
	seen map[string]uint64
}

// NewBATMAN creates the protocol over a network.
func NewBATMAN(eng *sim.Engine, net Network, cfg BATMANConfig) *BATMAN {
	b := &BATMAN{eng: eng, net: net, cfg: cfg, nodes: make(map[string]*batmanNode)}
	return b
}

// Name implements Router.
func (b *BATMAN) Name() string { return "batman" }

// Stats implements Router.
func (b *BATMAN) Stats() Stats { return b.stats }

func (b *BATMAN) node(id string) *batmanNode {
	n, ok := b.nodes[id]
	if !ok {
		n = &batmanNode{id: id, routes: make(map[string]*batmanRoute), seen: make(map[string]uint64)}
		b.nodes[id] = n
	}
	return n
}

// Start implements Router: every node begins beaconing.
func (b *BATMAN) Start() {
	b.eng.Every(b.cfg.OGMIntervalS, func() bool {
		for _, id := range b.net.Nodes() {
			n := b.node(id)
			n.seqno++
			b.flood(id, id, n.seqno, 1.0, id)
		}
		b.purge()
		return true
	})
}

// flood sends an OGM from `from` (current rebroadcaster) describing
// originator `orig` with the given TQ to all of from's neighbors.
// skip is the neighbor the OGM arrived from.
func (b *BATMAN) flood(from, orig string, seqno uint64, tq float64, skip string) {
	for _, nb := range b.net.Neighbors(from) {
		if nb == skip {
			continue
		}
		nb := nb
		b.stats.MessagesSent++
		b.stats.BytesSent += int64(b.cfg.OGMBytes)
		deliver(b.eng, b.net, b.cfg.LossProb, from, nb, func() {
			if !stillAdjacent(b.net, nb, from) {
				return
			}
			b.receive(nb, from, orig, seqno, tq)
		})
	}
}

// receive processes an OGM at node `at` arriving from neighbor `via`.
func (b *BATMAN) receive(at, via, orig string, seqno uint64, tq float64) {
	if at == orig {
		return
	}
	n := b.node(at)
	newTQ := tq * b.cfg.HopPenalty
	r := n.routes[orig]
	// Accept if strictly newer, or same-seqno with better TQ.
	if r == nil || seqno > r.seqno || (seqno == r.seqno && newTQ > r.tq) {
		n.routes[orig] = &batmanRoute{nextHop: via, tq: newTQ, seqno: seqno, heardAt: b.eng.Now()}
	}
	// Rebroadcast each (orig, seqno) once — from the first (usually
	// best-path) arrival, like batman-adv's best-link rebroadcast.
	if n.seen[orig] < seqno {
		n.seen[orig] = seqno
		b.flood(at, orig, seqno, newTQ, via)
	}
}

// purge expires stale routes.
func (b *BATMAN) purge() {
	cutoff := b.eng.Now() - b.cfg.PurgeAfterS
	for _, n := range b.nodes {
		for orig, r := range n.routes {
			if r.heardAt < cutoff {
				delete(n.routes, orig)
			}
		}
	}
}

// NextHop implements Router.
func (b *BATMAN) NextHop(src, dst string) (string, bool) {
	n, ok := b.nodes[src]
	if !ok {
		return "", false
	}
	r, ok := n.routes[dst]
	if !ok {
		return "", false
	}
	// The next hop must still be adjacent.
	if !stillAdjacent(b.net, src, r.nextHop) {
		return "", false
	}
	return r.nextHop, true
}

// GatewayTQ returns src's route quality toward dst (0 if none) — the
// batman-adv TQ metric the appendix-D host stack uses to sort
// gateways.
func (b *BATMAN) GatewayTQ(src, dst string) float64 {
	n, ok := b.nodes[src]
	if !ok {
		return 0
	}
	r, ok := n.routes[dst]
	if !ok {
		return 0
	}
	return r.tq
}

// BestGateway returns the gateway (from the given set) with the best
// TQ from src, implementing the "sort GS-based connectivity according
// to batman-adv metrics" host behaviour of Appendix D.
func (b *BATMAN) BestGateway(src string, gateways []string) (string, bool) {
	best, bestTQ := "", 0.0
	for _, gw := range sortedCopy(gateways) {
		if tq := b.GatewayTQ(src, gw); tq > bestTQ {
			best, bestTQ = gw, tq
		}
	}
	return best, best != ""
}
