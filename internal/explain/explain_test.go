package explain

import (
	"strings"
	"testing"

	"minkowski/internal/flight"
	"minkowski/internal/geo"
	"minkowski/internal/linkeval"
	"minkowski/internal/platform"
	"minkowski/internal/radio"
	"minkowski/internal/solver"
)

func TestLogQuery(t *testing.T) {
	var l Log
	l.Append(10, EvSolve, "cycle-1", "planned 12 links")
	l.Append(20, EvLinkState, "a<->b", "established")
	l.Append(30, EvLinkState, "c<->d", "failed: rf-fade")
	l.Append(40, EvCommand, "hbal-001", "link-establish via satcom")

	if got := l.Query(Filter{Kind: EvLinkState}); len(got) != 2 {
		t.Errorf("kind filter: %d events", len(got))
	}
	if got := l.Query(Filter{Subject: "c<->d"}); len(got) != 1 {
		t.Errorf("subject filter: %d events", len(got))
	}
	if got := l.Query(Filter{From: 25, To: 35}); len(got) != 1 {
		t.Errorf("time filter: %d events", len(got))
	}
	if got := l.Query(Filter{}); len(got) != 4 {
		t.Errorf("no filter: %d events", len(got))
	}
}

func TestLogCap(t *testing.T) {
	l := Log{Cap: 100}
	for i := 0; i < 1000; i++ {
		l.Appendf(float64(i), EvCommand, "n", "cmd %d", i)
	}
	if l.Len() > 100 {
		t.Errorf("log grew to %d despite cap", l.Len())
	}
	// Newest events must survive.
	got := l.Query(Filter{From: 990})
	if len(got) != 10 {
		t.Errorf("recent events lost: %d", len(got))
	}
}

func TestScrubber(t *testing.T) {
	var s Scrubber
	s.Record(Snapshot{At: 100, Links: []string{"a<->b"}})
	s.Record(Snapshot{At: 200, Links: []string{"a<->b", "b<->c"}})
	s.Record(Snapshot{At: 300, Links: []string{"b<->c"}})

	if _, ok := s.StateAt(50); ok {
		t.Error("no state before the first snapshot")
	}
	snap, ok := s.StateAt(250)
	if !ok || snap.At != 200 {
		t.Errorf("StateAt(250) = %+v", snap)
	}
	snap, _ = s.StateAt(300)
	if snap.At != 300 {
		t.Error("exact-time snapshot must match")
	}
	if got := s.Range(150, 350); len(got) != 2 {
		t.Errorf("range = %d snapshots", len(got))
	}
}

func TestReplay(t *testing.T) {
	var s Scrubber
	var l Log
	s.Record(Snapshot{At: 100})
	l.Append(110, EvLinkState, "a<->b", "established")
	l.Append(150, EvLinkState, "a<->b", "failed")
	snap, events, ok := Replay(&s, &l, 120)
	if !ok || snap.At != 100 {
		t.Fatal("replay base wrong")
	}
	if len(events) != 1 || events[0].Detail != "established" {
		t.Errorf("replay events = %v", events)
	}
}

// clearSky for why-not tests.
type clearSky struct{}

func (clearSky) EstimateRain(geo.LLA) (float64, bool) { return 0, true }
func (clearSky) AgeSeconds() float64                  { return 0 }
func (clearSky) Name() string                         { return "clear" }

func TestWhyNot(t *testing.T) {
	b1 := &flight.Balloon{ID: "hbal-001", Pos: geo.LLADeg(-1, 36.5, 18000)}
	n1 := platform.NewBalloonNode(b1)
	b2 := &flight.Balloon{ID: "hbal-002", Pos: geo.LLADeg(-1, 38.0, 18000)}
	n2 := platform.NewBalloonNode(b2)
	b3 := &flight.Balloon{ID: "hbal-003", Pos: geo.LLADeg(-1, 48.0, 18000)} // 1200+ km away
	n3 := platform.NewBalloonNode(b3)
	for _, n := range []*platform.Node{n1, n2, n3} {
		n.Power.CommsOn = true
	}
	e := linkeval.New(linkeval.DefaultConfig(), clearSky{}, nil)
	var xs []*platform.Transceiver
	xs = append(xs, n1.Xcvrs...)
	xs = append(xs, n2.Xcvrs...)
	cands := e.CandidateGraph(xs, 0)
	s := solver.New(solver.DefaultConfig())
	plan := s.Solve(solver.Input{
		Candidates: cands,
		Requests:   []solver.Request{{ID: "r", Src: "hbal-002", Dst: "hbal-001", MinBitrateBps: 1e6}},
		Existing:   map[radio.LinkID]bool{},
		Gateways:   []string{"hbal-001"},
	})
	if len(plan.Links) == 0 {
		t.Fatal("precondition: plan has links")
	}
	// The chosen pair answers "it WAS chosen".
	chosen := plan.Links[0]
	if got := WhyNot(e, plan, chosen.Report.XA, chosen.Report.XB); got != "it WAS chosen" {
		t.Errorf("chosen pair: %q", got)
	}
	// Out-of-range pair: not a candidate.
	if got := WhyNot(e, plan, n1.Xcvrs[0], n3.Xcvrs[0]); !strings.Contains(got, "not a candidate") {
		t.Errorf("far pair: %q", got)
	}
	// Same platform.
	if got := WhyNot(e, plan, n1.Xcvrs[0], n1.Xcvrs[1]); !strings.Contains(got, "same platform") {
		t.Errorf("same platform: %q", got)
	}
	// A pair whose transceiver is tasked by the chosen link.
	other := n2.Xcvrs[0]
	if other == chosen.Report.XA || other == chosen.Report.XB {
		other = n2.Xcvrs[1]
	}
	got := WhyNot(e, plan, chosen.Report.XA, other)
	if !strings.Contains(got, "tasked") && !strings.Contains(got, "utility") && !strings.Contains(got, "marginal") {
		t.Errorf("tasked pair: %q", got)
	}
}

func TestDetectObstructionSkew(t *testing.T) {
	var samples []PointingSample
	// Healthy sectors: small error everywhere...
	for az := 0.0; az < 360; az += 2 {
		samples = append(samples, PointingSample{
			Azimuth: geo.Deg(az), Elevation: geo.Deg(3), ErrorDB: 1.0,
		})
	}
	// ...except a new warehouse at 90–110°: links there measure 12 dB
	// below model.
	for az := 90.0; az < 110; az += 1 {
		for i := 0; i < 5; i++ {
			samples = append(samples, PointingSample{
				Azimuth: geo.Deg(az), Elevation: geo.Deg(2), ErrorDB: -12,
			})
		}
	}
	sectors := DetectObstructionSkew(samples, 10, -5, 5)
	if len(sectors) == 0 {
		t.Fatal("warehouse not detected")
	}
	for _, s := range sectors {
		if s.AzMinDeg < 80 || s.AzMaxDeg > 120 {
			t.Errorf("false positive sector %+v", s)
		}
		if s.MeanErrorDB > -5 {
			t.Errorf("sector error %v not negative enough", s.MeanErrorDB)
		}
	}
}

func TestAnomalyDetector(t *testing.T) {
	a := AnomalyDetector{ThresholdDB: 10}
	if a.Observe(3) || a.Observe(-7) {
		t.Error("small errors must not trigger")
	}
	if !a.Observe(-15) {
		t.Error("large negative error must trigger")
	}
	if !a.Observe(12) {
		t.Error("large positive error must trigger")
	}
	if a.Anomalies != 2 {
		t.Errorf("anomalies = %d", a.Anomalies)
	}
}
