// Package explain implements the explainability tooling of §6:
// Loon's production network was "exceptionally difficult" to debug,
// and the paper's remedies are reproduced here —
//
//  1. a comprehensive, filterable change-log of typed events ("take
//     care to log comprehensively to enable tracing of path dependent
//     effects"),
//  2. a time scrubber over recorded state snapshots ("a scrubber
//     enabling us to roll time backwards and forward"),
//  3. "why not" queries that answer why the solver did not pick a
//     particular link ("it empowers network operations to answer
//     'why not' questions"),
//  4. per-solution value metrics surfaced with each plan, and
//  5. the obstruction-skew detector behind Fig. 13: correlating link
//     telemetry with pointing vectors to find stale obstruction
//     masks.
package explain

import (
	"fmt"
	"sort"
	"strings"

	"minkowski/internal/geo"
	"minkowski/internal/linkeval"
	"minkowski/internal/platform"
	"minkowski/internal/solver"
	"minkowski/internal/stats"
)

// EventKind classifies change-log entries.
type EventKind string

// Event kinds emitted by the controller.
const (
	EvSolve        EventKind = "solve"
	EvLinkIntent   EventKind = "link-intent"
	EvLinkState    EventKind = "link-state"
	EvRouteIntent  EventKind = "route-intent"
	EvCommand      EventKind = "command"
	EvNodeJoin     EventKind = "node-join"
	EvNodeLeave    EventKind = "node-leave"
	EvDrain        EventKind = "drain"
	EvWeather      EventKind = "weather"
	EvAnomaly      EventKind = "anomaly"
	EvConnectivity EventKind = "connectivity"
)

// Event is one change-log entry.
type Event struct {
	At      float64
	Kind    EventKind
	Subject string // the entity the event is about (link ID, node, ...)
	Detail  string
}

// String implements fmt.Stringer.
func (e Event) String() string {
	return fmt.Sprintf("[%10.1f] %-12s %-28s %s", e.At, e.Kind, e.Subject, e.Detail)
}

// Log is the append-only event log.
type Log struct {
	events []Event
	// Cap bounds memory for long runs (0 = unbounded); oldest entries
	// are dropped in blocks.
	Cap int
}

// Append records an event.
func (l *Log) Append(at float64, kind EventKind, subject, detail string) {
	l.events = append(l.events, Event{At: at, Kind: kind, Subject: subject, Detail: detail})
	if l.Cap > 0 && len(l.events) > l.Cap {
		drop := l.Cap / 4
		l.events = append(l.events[:0], l.events[drop:]...)
	}
}

// Appendf records a formatted event.
func (l *Log) Appendf(at float64, kind EventKind, subject, format string, args ...interface{}) {
	l.Append(at, kind, subject, fmt.Sprintf(format, args...))
}

// Len returns the event count.
func (l *Log) Len() int { return len(l.events) }

// Filter returns events matching the predicate in time order.
type Filter struct {
	Kind     EventKind // "" = any
	Subject  string    // "" = any; substring match
	From, To float64   // To = 0 means +inf
}

// Query returns matching events.
func (l *Log) Query(f Filter) []Event {
	var out []Event
	for _, e := range l.events {
		if f.Kind != "" && e.Kind != f.Kind {
			continue
		}
		if f.Subject != "" && !strings.Contains(e.Subject, f.Subject) {
			continue
		}
		if e.At < f.From {
			continue
		}
		if f.To > 0 && e.At > f.To {
			continue
		}
		out = append(out, e)
	}
	return out
}

// --- Time scrubber -----------------------------------------------------

// Snapshot is the system state at one instant: enough to render the
// physical+logical views the paper's visualization tools showed.
type Snapshot struct {
	At float64
	// Links lists installed link IDs.
	Links []string
	// Intents maps link ID → intent state string.
	Intents map[string]string
	// Routes maps request → node path.
	Routes map[string][]string
	// Positions maps node → position.
	Positions map[string]geo.LLA
	// Value is the solver's utility for the active plan (observation
	// 4: "identify a metric for the value of each given network
	// solution").
	Value float64
}

// Scrubber stores periodic snapshots and serves StateAt queries.
type Scrubber struct {
	snaps []Snapshot
	// Cap bounds retained snapshots (0 = unbounded).
	Cap int
}

// Record appends a snapshot (time must be non-decreasing).
func (s *Scrubber) Record(snap Snapshot) {
	s.snaps = append(s.snaps, snap)
	if s.Cap > 0 && len(s.snaps) > s.Cap {
		drop := s.Cap / 4
		s.snaps = append(s.snaps[:0], s.snaps[drop:]...)
	}
}

// StateAt returns the latest snapshot at or before t.
func (s *Scrubber) StateAt(t float64) (Snapshot, bool) {
	i := sort.Search(len(s.snaps), func(i int) bool { return s.snaps[i].At > t })
	if i == 0 {
		return Snapshot{}, false
	}
	return s.snaps[i-1], true
}

// Range returns snapshots within [from, to].
func (s *Scrubber) Range(from, to float64) []Snapshot {
	var out []Snapshot
	for _, snap := range s.snaps {
		if snap.At >= from && snap.At <= to {
			out = append(out, snap)
		}
	}
	return out
}

// Replay renders the change-log between two instants — "roll time
// backwards and forward" — combining the nearest snapshot with the
// events since it.
func Replay(s *Scrubber, l *Log, t float64) (Snapshot, []Event, bool) {
	snap, ok := s.StateAt(t)
	if !ok {
		return Snapshot{}, nil, false
	}
	return snap, l.Query(Filter{From: snap.At, To: t}), true
}

// --- Why-not queries ---------------------------------------------------

// WhyNot answers "why didn't the solver pick a link between these two
// transceivers?" against a plan and the evaluator that produced its
// candidates.
func WhyNot(e *linkeval.Evaluator, plan *solver.Plan, xa, xb *platform.Transceiver) string {
	// Chosen already?
	for _, c := range plan.Links {
		if (c.Report.XA == xa && c.Report.XB == xb) || (c.Report.XA == xb && c.Report.XB == xa) {
			return "it WAS chosen"
		}
	}
	// Not a candidate at all?
	reason, rep := e.Reject(xa, xb, 0)
	if rep == nil {
		return "not a candidate: " + reason
	}
	// Candidate, but a transceiver is tasked elsewhere?
	for _, c := range plan.Links {
		for _, x := range []*platform.Transceiver{xa, xb} {
			if c.Report.XA == x || c.Report.XB == x {
				return fmt.Sprintf("%s is tasked with link %s (one pairing per transceiver)", x.ID, c.Report.ID)
			}
		}
	}
	// Channel exhaustion at either platform?
	used := map[string]int{}
	for _, c := range plan.Links {
		used[c.Report.XA.Node.ID]++
		used[c.Report.XB.Node.ID]++
	}
	const channelCount = 8
	for _, x := range []*platform.Transceiver{xa, xb} {
		if used[x.Node.ID] >= channelCount {
			return fmt.Sprintf("no non-interfering channel available at %s", x.Node.ID)
		}
	}
	if rep.Class == 1 { // rf.Marginal
		return "candidate but marginal (within the 5 dB deprioritization window); penalized during solving"
	}
	return "viable candidate with lower estimated utility than the chosen topology"
}

// --- Fig. 13: obstruction-skew detection --------------------------------

// PointingSample correlates one link-telemetry observation with its
// antenna pointing vector.
type PointingSample struct {
	Azimuth, Elevation float64 // radians
	// ErrorDB is measured minus modelled signal (negative = weaker
	// than the model expects).
	ErrorDB float64
}

// SkewSector is a pointing sector with a systematic negative skew —
// evidence of a stale obstruction mask (new construction, foliage).
type SkewSector struct {
	AzMinDeg, AzMaxDeg float64
	Samples            int
	MeanErrorDB        float64
}

// DetectObstructionSkew bins samples by azimuth and flags sectors
// whose mean error is below the threshold (dB) with at least
// minSamples — the automated version of Fig. 13's red-dot overlay.
func DetectObstructionSkew(samples []PointingSample, sectorDeg float64, thresholdDB float64, minSamples int) []SkewSector {
	if sectorDeg <= 0 {
		sectorDeg = 10
	}
	nBins := int(360/sectorDeg + 0.5)
	sums := make([]float64, nBins)
	counts := make([]int, nBins)
	for _, s := range samples {
		az := geo.ToDeg(geo.WrapAngle(s.Azimuth))
		b := int(az / sectorDeg)
		if b >= nBins {
			b = nBins - 1
		}
		sums[b] += s.ErrorDB
		counts[b]++
	}
	var out []SkewSector
	for b := 0; b < nBins; b++ {
		if counts[b] < minSamples {
			continue
		}
		mean := sums[b] / float64(counts[b])
		if mean <= thresholdDB {
			out = append(out, SkewSector{
				AzMinDeg: float64(b) * sectorDeg, AzMaxDeg: float64(b+1) * sectorDeg,
				Samples: counts[b], MeanErrorDB: mean,
			})
		}
	}
	return out
}

// AnomalyDetector flags significant modelled-vs-measured deviations
// for operator attention (§5 insight 2: "flagging significant
// deviations to network operations engineers is an important aspect
// of detecting and responding to field anomalies").
type AnomalyDetector struct {
	// ThresholdDB triggers on |error| above this.
	ThresholdDB float64
	// Window is the recent-sample window for the running statistics.
	recent stats.Sample
	// Anomalies counts triggers.
	Anomalies int
}

// Observe feeds one error sample; returns true when it is anomalous.
func (a *AnomalyDetector) Observe(errorDB float64) bool {
	a.recent.Add(errorDB)
	if errorDB > a.ThresholdDB || errorDB < -a.ThresholdDB {
		a.Anomalies++
		return true
	}
	return false
}
