package obs

import "strconv"

// Record is one flight-recorder entry. Kind is "span", "event", or
// "metric"; Detail is a pre-formatted string (strconv, never fmt).
type Record struct {
	T       float64 `json:"t"`
	Replica string  `json:"replica,omitempty"`
	Kind    string  `json:"kind"`
	Name    string  `json:"name"`
	Detail  string  `json:"detail,omitempty"`
}

// FlightDump is the "black box" attached to chaos violations: the
// recorder's window of recent records at the moment of the dump.
type FlightDump struct {
	At      float64  `json:"at"`
	Window  float64  `json:"window"`
	Replica string   `json:"replica,omitempty"`
	Evicted uint64   `json:"evicted,omitempty"`
	Records []Record `json:"records"`
}

// Recorder is a bounded ring of recent records, stamped with the sim
// clock and the acting replica. Disabled or nil recorders drop
// everything.
type Recorder struct {
	now     func() float64
	cap     int
	window  float64
	enabled bool
	replica string
	ring    []Record
	head    int // next write slot once the ring is full
	full    bool
	evicted uint64
}

// SetReplica stamps subsequent records with the acting replica's id
// (failover promotions re-stamp).
func (r *Recorder) SetReplica(id string) {
	if r == nil {
		return
	}
	r.replica = id
}

//minkowski:hotpath
func (r *Recorder) push(rec Record) {
	if r == nil || !r.enabled {
		return
	}
	rec.T = r.now()
	rec.Replica = r.replica
	if r.ring == nil {
		r.ring = make([]Record, 0, r.cap)
	}
	if !r.full {
		r.ring = append(r.ring, rec)
		if len(r.ring) == r.cap {
			r.full = true
		}
		return
	}
	r.ring[r.head] = rec
	r.head++
	r.evicted++
	if r.head == r.cap {
		r.head = 0
	}
}

// Event appends an event record.
func (r *Recorder) Event(name, detail string) {
	r.push(Record{Kind: "event", Name: name, Detail: detail})
}

// Metric appends a metric record (per-cycle telemetry summaries).
func (r *Recorder) Metric(name, detail string) {
	r.push(Record{Kind: "metric", Name: name, Detail: detail})
}

// spanDone mirrors a completed span into the ring.
func (r *Recorder) spanDone(s *Span) {
	if r == nil || !r.enabled {
		return
	}
	r.push(Record{Kind: "span", Name: s.Name,
		Detail: "dur=" + strconv.FormatFloat(s.End-s.Start, 'g', -1, 64)})
}

// Dump exports the records inside the lookback window, oldest first.
// Returns nil when the recorder is off (the chaos report omits the
// field).
func (r *Recorder) Dump() *FlightDump {
	if r == nil || !r.enabled {
		return nil
	}
	at := r.now()
	d := &FlightDump{At: at, Window: r.window, Replica: r.replica, Evicted: r.evicted}
	cutoff := at - r.window
	emit := func(rec Record) {
		if rec.T >= cutoff {
			d.Records = append(d.Records, rec)
		}
	}
	if r.full {
		for _, rec := range r.ring[r.head:] {
			emit(rec)
		}
		for _, rec := range r.ring[:r.head] {
			emit(rec)
		}
	} else {
		for _, rec := range r.ring {
			emit(rec)
		}
	}
	if d.Records == nil {
		d.Records = []Record{}
	}
	return d
}
