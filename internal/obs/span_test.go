package obs

import "testing"

func newTestObs(enabled bool, clock *float64) *Obs {
	return New(Config{Enabled: enabled, CycleCap: 3}, func() float64 { return *clock })
}

func TestDisabledTracerIsInert(t *testing.T) {
	clock := 0.0
	o := newTestObs(false, &clock)
	s := o.Tracer.StartCycle("cycle")
	if s != nil {
		t.Fatal("disabled tracer must return nil spans")
	}
	// Every method must be nil-safe.
	s.SetAttr("k", "v")
	s.SetAttrInt("n", 1)
	s.Child("c").EndSpan()
	s.ChildAt("c2", 1).EndSpan()
	s.EndSpan()
	if o.Tracer.Current() != nil || o.Tracer.Trees() != nil {
		t.Fatal("disabled tracer must expose no spans")
	}
	if o.Enabled() {
		t.Fatal("Enabled() must be false")
	}
}

func TestSpanTreeAndCycleEviction(t *testing.T) {
	clock := 0.0
	o := newTestObs(true, &clock)
	tr := o.Tracer

	for i := 0; i < 5; i++ {
		clock = float64(i * 10)
		s := tr.StartCycle("cycle")
		if tr.Current() != s {
			t.Fatal("Current must track the latest root")
		}
		clock += 1
		c := s.Child("evaluate")
		c.SetAttrInt("pairs", i)
		clock += 1
		c.EndSpan()
		clock += 1
		s.EndSpan()
	}
	trees := tr.Trees()
	if len(trees) != 3 {
		t.Fatalf("retained %d cycles, want cap 3", len(trees))
	}
	// Oldest retained root is cycle i=2 (started at t=20).
	if trees[0].Start != 20 || trees[2].Start != 40 {
		t.Fatalf("eviction order wrong: starts %v, %v", trees[0].Start, trees[2].Start)
	}
	root := trees[2]
	if len(root.Children) != 1 || root.Children[0].Name != "evaluate" {
		t.Fatalf("child tree wrong: %+v", root)
	}
	child := root.Children[0]
	if child.Start != 41 || child.End != 42 || root.End != 43 {
		t.Fatalf("span times wrong: child [%v,%v], root end %v", child.Start, child.End, root.End)
	}
	if len(child.Attrs) != 1 || child.Attrs[0].Key != "pairs" || child.Attrs[0].Value != "4" {
		t.Fatalf("attrs wrong: %+v", child.Attrs)
	}
}

func TestChildAtBackdatesStart(t *testing.T) {
	clock := 100.0
	o := newTestObs(true, &clock)
	s := o.Tracer.StartCycle("cycle")
	e := s.ChildAt("enact", 80)
	clock = 120
	e.EndSpan()
	if e.Start != 80 || e.End != 120 {
		t.Fatalf("enact span [%v,%v], want [80,120]", e.Start, e.End)
	}
}

func TestSpanCompletionFeedsRecorder(t *testing.T) {
	clock := 0.0
	o := newTestObs(true, &clock)
	s := o.Tracer.StartCycle("cycle")
	clock = 2.5
	s.EndSpan()
	d := o.Rec.Dump()
	if d == nil || len(d.Records) != 1 {
		t.Fatalf("dump = %+v, want one span record", d)
	}
	r := d.Records[0]
	if r.Kind != "span" || r.Name != "cycle" || r.Detail != "dur=2.5" || r.T != 2.5 {
		t.Fatalf("record = %+v", r)
	}
}
