package obs

import (
	"encoding/json"
	"sort"
)

// metricKind discriminates registry slots. String forms appear in the
// snapshot schema and are part of the stable format.
type metricKind uint8

const (
	kindCounter metricKind = iota
	kindGauge
	kindHistogram
)

func (k metricKind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge:
		return "gauge"
	case kindHistogram:
		return "histogram"
	}
	return "unknown"
}

// metric is one registry slot. Handles hold a direct pointer so the
// hot-path record is a single field update with no name lookup.
type metric struct {
	name    string
	kind    metricKind
	count   uint64         // counter
	value   float64        // gauge
	fn      func() float64 // gauge mirror, evaluated at snapshot time
	bounds  []float64      // histogram upper bounds (inclusive), ascending
	buckets []uint64       // len(bounds)+1; last is overflow
	sum     float64        // histogram sum of observations
}

// Registry interns named metrics to slots once at registration; all
// recording after that is pointer-direct. It is intentionally
// lock-free: the determinism contract (package doc) restricts all
// recording to the single-threaded sim event loop.
type Registry struct {
	now     func() float64
	metrics []*metric
	byName  map[string]*metric
}

// NewRegistry builds an empty registry reading time from now.
func NewRegistry(now func() float64) *Registry {
	return &Registry{now: now, byName: make(map[string]*metric)}
}

func (r *Registry) intern(name string, kind metricKind) *metric {
	if m, ok := r.byName[name]; ok {
		if m.kind != kind {
			panic("obs: metric " + name + " re-registered as " + kind.String() + ", was " + m.kind.String())
		}
		return m
	}
	m := &metric{name: name, kind: kind}
	r.metrics = append(r.metrics, m)
	r.byName[name] = m
	return m
}

// Counter returns the handle for a monotonically increasing counter,
// creating it on first use. Registering the same name twice returns
// the same slot; registering it as a different kind panics.
func (r *Registry) Counter(name string) Counter {
	if r == nil {
		return Counter{}
	}
	return Counter{m: r.intern(name, kindCounter)}
}

// Gauge returns the handle for a last-value-wins gauge.
func (r *Registry) Gauge(name string) Gauge {
	if r == nil {
		return Gauge{}
	}
	return Gauge{m: r.intern(name, kindGauge)}
}

// GaugeFunc registers a gauge whose value is read from fn at snapshot
// time. This mirrors counters whose authoritative storage lives
// elsewhere (cdpi per-agent sums, satcom queues, journal audits) into
// the snapshot with zero hot-path cost. fn runs on the sim loop
// during Snapshot and must be deterministic.
func (r *Registry) GaugeFunc(name string, fn func() float64) {
	if r == nil {
		return
	}
	r.intern(name, kindGauge).fn = fn
}

// Histogram returns the handle for a fixed-bucket histogram. bounds
// are ascending inclusive upper edges; observations above the last
// bound land in an overflow bucket. bounds are captured once at
// first registration.
func (r *Registry) Histogram(name string, bounds []float64) Histogram {
	if r == nil {
		return Histogram{}
	}
	m := r.intern(name, kindHistogram)
	if m.buckets == nil {
		m.bounds = append([]float64(nil), bounds...)
		m.buckets = make([]uint64, len(bounds)+1)
	}
	return Histogram{m: m}
}

// Counter is a typed handle; the zero value is a safe no-op.
type Counter struct{ m *metric }

// Inc adds one.
//
//minkowski:hotpath
func (c Counter) Inc() {
	if c.m != nil {
		c.m.count++
	}
}

// Add adds n.
//
//minkowski:hotpath
func (c Counter) Add(n uint64) {
	if c.m != nil {
		c.m.count += n
	}
}

// Count reads the current value.
func (c Counter) Count() uint64 {
	if c.m == nil {
		return 0
	}
	return c.m.count
}

// Gauge is a typed handle; the zero value is a safe no-op.
type Gauge struct{ m *metric }

// Set records the latest value.
//
//minkowski:hotpath
func (g Gauge) Set(v float64) {
	if g.m != nil {
		g.m.value = v
	}
}

// Value reads the last set value (0 for func-backed gauges outside a
// snapshot).
func (g Gauge) Value() float64 {
	if g.m == nil {
		return 0
	}
	return g.m.value
}

// Histogram is a typed handle; the zero value is a safe no-op.
type Histogram struct{ m *metric }

// Observe records v into its bucket. The bucket scan is linear over a
// handful of fixed edges — no allocation, no boxing.
//
//minkowski:hotpath
func (h Histogram) Observe(v float64) {
	if h.m == nil {
		return
	}
	i := 0
	for i < len(h.m.bounds) && v > h.m.bounds[i] {
		i++
	}
	h.m.buckets[i]++
	h.m.sum += v
	h.m.count++
}

// MetricSnap is one metric in the stable snapshot schema.
type MetricSnap struct {
	Name    string    `json:"name"`
	Kind    string    `json:"kind"`
	Count   uint64    `json:"count,omitempty"`
	Value   float64   `json:"value,omitempty"`
	Bounds  []float64 `json:"bounds,omitempty"`
	Buckets []uint64  `json:"buckets,omitempty"`
	Sum     float64   `json:"sum,omitempty"`
}

// Snapshot is the exported state of a registry at one sim instant.
// Metrics are sorted by name; the canonical byte form is Encode.
type Snapshot struct {
	At      float64      `json:"at"`
	Metrics []MetricSnap `json:"metrics"`
}

// Snapshot exports every registered metric, name-sorted, stamped with
// the sim clock. Func-backed gauges are evaluated here.
func (r *Registry) Snapshot() Snapshot {
	s := Snapshot{}
	if r == nil {
		return s
	}
	if r.now != nil {
		s.At = r.now()
	}
	s.Metrics = make([]MetricSnap, 0, len(r.metrics))
	for _, m := range r.metrics {
		ms := MetricSnap{Name: m.name, Kind: m.kind.String()}
		switch m.kind {
		case kindCounter:
			ms.Count = m.count
		case kindGauge:
			ms.Value = m.value
			if m.fn != nil {
				ms.Value = m.fn()
			}
		case kindHistogram:
			ms.Count = m.count
			ms.Sum = m.sum
			ms.Bounds = append([]float64(nil), m.bounds...)
			ms.Buckets = append([]uint64(nil), m.buckets...)
		}
		s.Metrics = append(s.Metrics, ms)
	}
	sortSnaps(s.Metrics)
	return s
}

func sortSnaps(ms []MetricSnap) {
	sort.SliceStable(ms, func(i, j int) bool { return ms[i].Name < ms[j].Name })
}

// Encode renders the canonical byte form: metrics name-sorted, indented
// JSON. Byte-identical across same-seed runs; Decode∘Encode is the
// identity on canonical bytes (fuzzed by FuzzSnapshotRoundTrip).
func (s Snapshot) Encode() ([]byte, error) {
	c := s
	c.Metrics = append([]MetricSnap(nil), s.Metrics...)
	sortSnaps(c.Metrics)
	return json.MarshalIndent(c, "", "  ")
}

// DecodeSnapshot parses a snapshot previously produced by Encode.
func DecodeSnapshot(b []byte) (Snapshot, error) {
	var s Snapshot
	err := json.Unmarshal(b, &s)
	return s, err
}
