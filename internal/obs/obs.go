// Package obs is the deterministic observability subsystem: a metrics
// registry (named counters, gauges, fixed-bucket histograms with
// interned typed handles), a lightweight solve-cycle span tracer, and
// a bounded flight recorder the chaos harness dumps on invariant
// violations (DESIGN.md §11).
//
// The paper's §6 is explicit that operating the TS-SDN hinged on
// explainability — operators lived in solve-cycle change-logs, time
// scrubbers, and link telemetry. This package is that instrumentation
// layer for the reproduction, under one hard contract: observability
// must never perturb the simulation. Every rule below serves that
// contract.
//
//   - All timestamps come from the injected sim clock (`now`), never
//     the wall clock — a time.Now reachable from a snapshot is a
//     minkowski-vet dettaint finding.
//   - Recording happens only on the single-threaded simulation event
//     loop, never inside solver/evaluator worker goroutines, so the
//     registry needs no locks and record order is deterministic.
//   - Nothing in this package feeds back into control decisions:
//     plan fingerprints, journals, and telemetry digests are
//     byte-identical with obs fully enabled, disabled, or absent.
//   - Snapshots, span trees, and flight dumps never include
//     GOMAXPROCS- or worker-count-derived quantities unless the
//     fan-out width was explicitly pinned by configuration, so
//     chaosearch reports embedding them stay byte-identical across
//     -workers and GOMAXPROCS.
package obs

// Config sizes one Obs instance.
type Config struct {
	// Enabled gates the tracer and the flight recorder. The metrics
	// registry is always live regardless — its counters are the
	// storage behind several controller telemetry readers, which must
	// keep counting even when tracing is off.
	Enabled bool
	// FlightCap bounds the flight-recorder ring (records). 0 keeps
	// the default (4096).
	FlightCap int
	// FlightWindowS is the flight dump's lookback in sim-seconds.
	// 0 keeps the default (120).
	FlightWindowS float64
	// CycleCap bounds retained solve-cycle span trees. 0 keeps the
	// default (64).
	CycleCap int
}

// Obs bundles the three instruments sharing one sim clock.
type Obs struct {
	Reg    *Registry
	Tracer *Tracer
	Rec    *Recorder
}

// New builds an Obs instance reading time from now (the sim engine's
// clock). With cfg.Enabled false the tracer and recorder are inert
// no-ops; the registry records either way.
func New(cfg Config, now func() float64) *Obs {
	if cfg.FlightCap <= 0 {
		cfg.FlightCap = 4096
	}
	if cfg.FlightWindowS <= 0 {
		cfg.FlightWindowS = 120
	}
	if cfg.CycleCap <= 0 {
		cfg.CycleCap = 64
	}
	rec := &Recorder{now: now, cap: cfg.FlightCap, window: cfg.FlightWindowS, enabled: cfg.Enabled}
	return &Obs{
		Reg:    NewRegistry(now),
		Tracer: &Tracer{now: now, cap: cfg.CycleCap, rec: rec, enabled: cfg.Enabled},
		Rec:    rec,
	}
}

// Enabled reports whether the tracer/recorder side is live.
func (o *Obs) Enabled() bool { return o != nil && o.Rec != nil && o.Rec.enabled }
