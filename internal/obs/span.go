package obs

import "strconv"

// Attr is one key/value annotation on a span. Values are
// pre-formatted strings (strconv, never fmt) so recording stays
// hotpath-clean.
type Attr struct {
	Key   string `json:"k"`
	Value string `json:"v"`
}

// Span is one node of a solve-cycle trace tree. Exported fields are
// the deterministic wire form; timestamps are sim-seconds.
type Span struct {
	Name     string  `json:"name"`
	Start    float64 `json:"start"`
	End      float64 `json:"end"`
	Attrs    []Attr  `json:"attrs,omitempty"`
	Children []*Span `json:"children,omitempty"`

	tr *Tracer
}

// Tracer brackets solve cycles. It retains the last cap root spans
// (cycles) and mirrors span completions into the flight recorder. A
// nil or disabled tracer returns nil spans, and every *Span method is
// nil-safe, so call sites need no guards.
type Tracer struct {
	now     func() float64
	cap     int
	rec     *Recorder
	enabled bool
	cycles  []*Span
}

// StartCycle opens a new root span, evicting the oldest retained
// cycle beyond the cap. Returns nil when tracing is off.
func (t *Tracer) StartCycle(name string) *Span {
	if t == nil || !t.enabled {
		return nil
	}
	s := &Span{Name: name, Start: t.now(), End: -1, tr: t}
	if len(t.cycles) >= t.cap {
		n := copy(t.cycles, t.cycles[1:])
		t.cycles = t.cycles[:n]
	}
	t.cycles = append(t.cycles, s)
	return s
}

// Current returns the most recently started root span (ended or not).
// Late completions — e.g. an enactment acked cycles after its
// dispatch — attach here; attribution is "the cycle open at
// completion time", which is deterministic because completions run on
// the sim loop.
func (t *Tracer) Current() *Span {
	if t == nil || len(t.cycles) == 0 {
		return nil
	}
	return t.cycles[len(t.cycles)-1]
}

// Trees returns the retained root spans, oldest first.
func (t *Tracer) Trees() []*Span {
	if t == nil {
		return nil
	}
	return append([]*Span(nil), t.cycles...)
}

// Child opens a sub-span starting now.
func (s *Span) Child(name string) *Span {
	if s == nil {
		return nil
	}
	return s.ChildAt(name, s.tr.now())
}

// ChildAt opens a sub-span with an explicit start time (used to
// back-date enact spans to their dispatch instant).
func (s *Span) ChildAt(name string, start float64) *Span {
	if s == nil {
		return nil
	}
	c := &Span{Name: name, Start: start, End: -1, tr: s.tr}
	s.Children = append(s.Children, c)
	return c
}

// EndSpan closes the span at the current sim time and mirrors a
// completion record into the flight recorder.
func (s *Span) EndSpan() {
	if s == nil {
		return
	}
	s.End = s.tr.now()
	s.tr.rec.spanDone(s)
}

// SetAttr annotates the span. The attrs slice is grown with explicit
// capacity so repeated annotation does not churn allocations.
func (s *Span) SetAttr(key, value string) {
	if s == nil {
		return
	}
	if s.Attrs == nil {
		s.Attrs = make([]Attr, 0, 4)
	}
	s.Attrs = append(s.Attrs, Attr{Key: key, Value: value})
}

// SetAttrInt annotates with an integer value.
func (s *Span) SetAttrInt(key string, v int) {
	if s == nil {
		return
	}
	s.SetAttr(key, strconv.Itoa(v))
}

// SetAttrFloat annotates with a float value (shortest round-trip
// form, matching the snapshot number format).
func (s *Span) SetAttrFloat(key string, v float64) {
	if s == nil {
		return
	}
	s.SetAttr(key, strconv.FormatFloat(v, 'g', -1, 64))
}

// SetAttrBool annotates with "true"/"false".
func (s *Span) SetAttrBool(key string, v bool) {
	if s == nil {
		return
	}
	s.SetAttr(key, strconv.FormatBool(v))
}
