package obs

import (
	"bytes"
	"testing"
)

func TestCounterGaugeHistogram(t *testing.T) {
	clock := 10.0
	r := NewRegistry(func() float64 { return clock })

	c := r.Counter("solve.runs")
	c.Inc()
	c.Add(2)
	if got := c.Count(); got != 3 {
		t.Fatalf("counter = %d, want 3", got)
	}
	if c2 := r.Counter("solve.runs"); c2.Count() != 3 {
		t.Fatalf("re-registration did not return the same slot")
	}

	g := r.Gauge("lease.epoch")
	g.Set(4)
	g.Set(7)
	if g.Value() != 7 {
		t.Fatalf("gauge = %v, want 7", g.Value())
	}

	h := r.Histogram("ack.latency_s", []float64{1, 10, 100})
	for _, v := range []float64{0.5, 1, 5, 50, 500} {
		h.Observe(v)
	}
	s := r.Snapshot()
	if s.At != 10 {
		t.Fatalf("snapshot At = %v, want sim clock 10", s.At)
	}
	var hs *MetricSnap
	for i := range s.Metrics {
		if s.Metrics[i].Name == "ack.latency_s" {
			hs = &s.Metrics[i]
		}
	}
	if hs == nil {
		t.Fatal("histogram missing from snapshot")
	}
	// Bounds are inclusive upper edges: 0.5 and 1 land in bucket 0.
	want := []uint64{2, 1, 1, 1}
	if len(hs.Buckets) != len(want) {
		t.Fatalf("buckets = %v, want %v", hs.Buckets, want)
	}
	for i, b := range want {
		if hs.Buckets[i] != b {
			t.Fatalf("buckets = %v, want %v", hs.Buckets, want)
		}
	}
	if hs.Count != 5 || hs.Sum != 556.5 {
		t.Fatalf("count/sum = %d/%v, want 5/556.5", hs.Count, hs.Sum)
	}
}

func TestKindMismatchPanics(t *testing.T) {
	r := NewRegistry(func() float64 { return 0 })
	r.Counter("x")
	defer func() {
		if recover() == nil {
			t.Fatal("re-registering a counter as a gauge should panic")
		}
	}()
	r.Gauge("x")
}

func TestGaugeFuncEvaluatedAtSnapshot(t *testing.T) {
	r := NewRegistry(func() float64 { return 0 })
	v := 1.0
	r.GaugeFunc("mirror", func() float64 { return v })
	v = 42
	s := r.Snapshot()
	if len(s.Metrics) != 1 || s.Metrics[0].Value != 42 {
		t.Fatalf("snapshot = %+v, want mirror=42", s.Metrics)
	}
}

func TestZeroHandlesAreNoOps(t *testing.T) {
	var c Counter
	var g Gauge
	var h Histogram
	c.Inc()
	c.Add(5)
	g.Set(1)
	h.Observe(1)
	if c.Count() != 0 || g.Value() != 0 {
		t.Fatal("zero handles must read as zero")
	}
	var r *Registry
	r.Counter("a").Inc()
	r.GaugeFunc("b", nil)
	if s := r.Snapshot(); len(s.Metrics) != 0 {
		t.Fatal("nil registry snapshot must be empty")
	}
}

func TestSnapshotSortedAndStable(t *testing.T) {
	r := NewRegistry(func() float64 { return 5 })
	r.Counter("zeta").Inc()
	r.Gauge("alpha").Set(1.5)
	r.Histogram("mid", []float64{1}).Observe(2)

	s := r.Snapshot()
	for i := 1; i < len(s.Metrics); i++ {
		if s.Metrics[i-1].Name > s.Metrics[i].Name {
			t.Fatalf("snapshot not sorted: %q > %q", s.Metrics[i-1].Name, s.Metrics[i].Name)
		}
	}
	b1, err := s.Encode()
	if err != nil {
		t.Fatal(err)
	}
	d, err := DecodeSnapshot(b1)
	if err != nil {
		t.Fatal(err)
	}
	b2, err := d.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b1, b2) {
		t.Fatalf("encode/decode/encode not byte-stable:\n%s\nvs\n%s", b1, b2)
	}
	// Two snapshots of the same registry state are byte-identical.
	b3, err := r.Snapshot().Encode()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b1, b3) {
		t.Fatal("same-state snapshots differ")
	}
}
