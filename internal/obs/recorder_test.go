package obs

import "testing"

func TestRecorderRingAndWindow(t *testing.T) {
	clock := 0.0
	o := New(Config{Enabled: true, FlightCap: 4, FlightWindowS: 50}, func() float64 { return clock })
	rec := o.Rec
	rec.SetReplica("A")

	for i := 0; i < 6; i++ {
		clock = float64(i * 10)
		rec.Event("tick", "")
	}
	// Ring cap 4: records at t=0,10 evicted; survivors t=20..50.
	clock = 60
	d := rec.Dump()
	if d == nil {
		t.Fatal("enabled recorder must dump")
	}
	if d.Evicted != 2 {
		t.Fatalf("evicted = %d, want 2", d.Evicted)
	}
	// Window 50 back from t=60 keeps t >= 10; ring keeps t >= 20.
	if len(d.Records) != 4 || d.Records[0].T != 20 || d.Records[3].T != 50 {
		t.Fatalf("records = %+v", d.Records)
	}
	for _, r := range d.Records {
		if r.Replica != "A" {
			t.Fatalf("record missing replica stamp: %+v", r)
		}
	}

	// Window excludes old records even if still in the ring.
	clock = 120
	d = rec.Dump()
	if len(d.Records) != 0 {
		t.Fatalf("window should exclude all: %+v", d.Records)
	}
	if d.Records == nil {
		t.Fatal("empty dump must encode as [], not null")
	}
}

func TestRecorderReplicaRestamp(t *testing.T) {
	clock := 0.0
	o := New(Config{Enabled: true}, func() float64 { return clock })
	o.Rec.SetReplica("A")
	o.Rec.Event("before", "")
	o.Rec.SetReplica("B")
	clock = 1
	o.Rec.Metric("after", "x=1")
	d := o.Rec.Dump()
	if len(d.Records) != 2 || d.Records[0].Replica != "A" || d.Records[1].Replica != "B" {
		t.Fatalf("records = %+v", d.Records)
	}
	if d.Replica != "B" {
		t.Fatalf("dump replica = %q, want B", d.Replica)
	}
	if d.Records[1].Kind != "metric" || d.Records[1].Detail != "x=1" {
		t.Fatalf("metric record = %+v", d.Records[1])
	}
}

func TestDisabledRecorderDropsAndDumpsNil(t *testing.T) {
	clock := 0.0
	o := New(Config{Enabled: false}, func() float64 { return clock })
	o.Rec.Event("x", "")
	o.Rec.Metric("y", "")
	if o.Rec.Dump() != nil {
		t.Fatal("disabled recorder must dump nil")
	}
	var r *Recorder
	r.SetReplica("A")
	r.Event("x", "")
	if r.Dump() != nil {
		t.Fatal("nil recorder must dump nil")
	}
}
