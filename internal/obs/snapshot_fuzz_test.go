package obs

import (
	"bytes"
	"testing"
)

// FuzzSnapshotRoundTrip checks the snapshot codec's canonical-form
// contract: any bytes that decode at all must re-encode to a fixed
// point — encode(decode(encode(decode(b)))) == encode(decode(b)) —
// so a snapshot written by one run can be diffed byte-for-byte
// against another.
func FuzzSnapshotRoundTrip(f *testing.F) {
	clock := 3.5
	r := NewRegistry(func() float64 { return clock })
	r.Counter("solve.runs").Add(7)
	r.Gauge("chaos.margin.inv-single-leader").Set(-0.25)
	r.Histogram("ack.latency_s", []float64{1, 10, 100}).Observe(42)
	b, err := r.Snapshot().Encode()
	if err != nil {
		f.Fatal(err)
	}
	f.Add(b)
	f.Add([]byte(`{"at":0,"metrics":[]}`))
	f.Add([]byte(`{"at":-1,"metrics":[{"name":"b","kind":"gauge"},{"name":"a","kind":"counter","count":1}]}`))
	f.Add([]byte(`not json`))

	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := DecodeSnapshot(data)
		if err != nil {
			return // malformed input is allowed to fail decode
		}
		c1, err := s.Encode()
		if err != nil {
			return // e.g. NaN smuggled via struct round-trip is not encodable
		}
		d2, err := DecodeSnapshot(c1)
		if err != nil {
			t.Fatalf("canonical bytes failed to decode: %v\n%s", err, c1)
		}
		c2, err := d2.Encode()
		if err != nil {
			t.Fatalf("canonical snapshot failed to re-encode: %v", err)
		}
		if !bytes.Equal(c1, c2) {
			t.Fatalf("canonical form is not a fixed point:\n%s\nvs\n%s", c1, c2)
		}
	})
}
