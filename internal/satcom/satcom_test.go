package satcom

import (
	"sort"
	"testing"

	"minkowski/internal/sim"
)

func TestDeliveryAndCallback(t *testing.T) {
	eng := sim.New(1)
	g := NewGateway(eng, DefaultProviders())
	var got *Message
	g.Deliver = func(m *Message) { got = m }
	id, ok := g.Send(&Message{Dest: "hbal-001", Size: 512})
	if !ok || id == 0 {
		t.Fatal("send rejected")
	}
	eng.Run(3600)
	if got == nil {
		t.Fatal("message never delivered")
	}
	if got.Dest != "hbal-001" {
		t.Errorf("delivered to %q", got.Dest)
	}
	if g.Delivered != 1 || g.Sent != 1 || g.Dropped != 0 {
		t.Errorf("counters: %+v", g)
	}
}

func TestLatencyDistributionMatchesPaper(t *testing.T) {
	// Sample many round trips (two one-way draws) and check the
	// quantiles are in the paper's ballpark: median 87 s, p90 347 s,
	// p99 890 s.
	eng := sim.New(7)
	g := NewGateway(eng, DefaultProviders())
	var rtts []float64
	n := 2000
	for i := 0; i < n; i++ {
		// Unique destination per message → no rate-limit queueing.
		dest := "node-" + string(rune('a'+i%26)) + string(rune('a'+(i/26)%26)) + string(rune('a'+i/676))
		start := eng.Now()
		done := false
		g.Deliver = func(m *Message) {
			if !done {
				// Response takes another one-way draw.
				p := g.providers[int(m.ID)%2]
				back := p.DrawOneWay(eng.RNG("resp"))
				rtts = append(rtts, eng.Now()-start+back)
				done = true
			}
		}
		g.Send(&Message{Dest: dest, Size: 512})
		eng.Run(eng.Now() + 4000)
	}
	sort.Float64s(rtts)
	q := func(p float64) float64 { return rtts[int(p*float64(len(rtts)))] }
	med, p90, p99 := q(0.5), q(0.9), q(0.99)
	if med < 40 || med > 180 {
		t.Errorf("median RTT = %.0f s, want ~87 s", med)
	}
	if p90 < 150 || p90 > 700 {
		t.Errorf("p90 RTT = %.0f s, want ~347 s", p90)
	}
	if p99 < 400 || p99 > 2500 {
		t.Errorf("p99 RTT = %.0f s, want ~890 s", p99)
	}
	if rtts[0] < 20 {
		t.Errorf("min RTT = %.0f s, below the paper's 23 s floor", rtts[0])
	}
}

func TestPerNodeRateLimit(t *testing.T) {
	eng := sim.New(1)
	g := NewGateway(eng, DefaultProviders())
	var deliveries []float64
	g.Deliver = func(m *Message) { deliveries = append(deliveries, eng.Now()) }
	// Burst of 5 messages to the same balloon: the gateway must space
	// transmissions by the per-node interval across both providers.
	for i := 0; i < 5; i++ {
		g.Send(&Message{Dest: "hbal-001", Size: 1024})
	}
	eng.Run(3600)
	if len(deliveries) != 5 {
		t.Fatalf("delivered %d of 5", len(deliveries))
	}
	// With 2 providers at 60 s per node, 5 messages need ≥ 120 s of
	// transmit spacing; the last transmission can't have happened
	// before t=60 (3rd message on one provider).
	sort.Float64s(deliveries)
	if deliveries[4]-deliveries[0] < 30 {
		t.Errorf("deliveries bunched within %.0f s — rate limit not applied", deliveries[4]-deliveries[0])
	}
}

func TestTTEDrop(t *testing.T) {
	eng := sim.New(1)
	g := NewGateway(eng, DefaultProviders())
	var droppedWhy string
	g.OnDrop = func(m *Message, why string) { droppedWhy = why }
	// TTE 5 s in the future: no provider can make it.
	_, ok := g.Send(&Message{Dest: "hbal-001", Size: 512, TTE: eng.Now() + 5})
	if ok {
		t.Error("infeasible TTE must be dropped")
	}
	if droppedWhy != "tte-infeasible" {
		t.Errorf("drop reason = %q", droppedWhy)
	}
	if g.Dropped != 1 {
		t.Errorf("dropped counter = %d", g.Dropped)
	}
}

func TestTTEFeasibleAccepted(t *testing.T) {
	eng := sim.New(1)
	g := NewGateway(eng, DefaultProviders())
	delivered := false
	g.Deliver = func(m *Message) { delivered = true }
	_, ok := g.Send(&Message{Dest: "hbal-001", Size: 512, TTE: eng.Now() + 600})
	if !ok {
		t.Fatal("10-minute TTE should be feasible")
	}
	eng.Run(600)
	if !delivered {
		t.Error("feasible message not delivered")
	}
}

func TestRequiresInBandDrop(t *testing.T) {
	eng := sim.New(1)
	g := NewGateway(eng, DefaultProviders())
	var why string
	g.OnDrop = func(m *Message, w string) { why = w }
	if _, ok := g.Send(&Message{Dest: "hbal-001", RequiresInBand: true}); ok {
		t.Error("in-band-only message must be dropped by the satcom gateway")
	}
	if why != "requires-in-band" {
		t.Errorf("drop reason = %q", why)
	}
}

func TestProviderSpreading(t *testing.T) {
	// With the same destination, consecutive messages should use
	// alternating providers (whichever is free sooner).
	eng := sim.New(1)
	providers := DefaultProviders()
	g := NewGateway(eng, providers)
	g.Send(&Message{Dest: "x", Size: 100})
	g.Send(&Message{Dest: "x", Size: 100})
	// Both providers should now have a nextFree entry for x.
	usedBoth := providers[0].nextFree["x"] > 0 && providers[1].nextFree["x"] > 0
	if !usedBoth {
		t.Error("two back-to-back messages should spread across providers")
	}
}

func TestDeterminism(t *testing.T) {
	run := func() []float64 {
		eng := sim.New(9)
		g := NewGateway(eng, DefaultProviders())
		var times []float64
		g.Deliver = func(m *Message) { times = append(times, eng.Now()) }
		for i := 0; i < 10; i++ {
			g.Send(&Message{Dest: "hbal-001", Size: 100})
		}
		eng.Run(7200)
		return times
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatal("different delivery counts")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed must give identical delivery times")
		}
	}
}

func BenchmarkSend(b *testing.B) {
	eng := sim.New(1)
	g := NewGateway(eng, DefaultProviders())
	g.Deliver = func(m *Message) {}
	for i := 0; i < b.N; i++ {
		g.Send(&Message{Dest: "hbal-001", Size: 512})
		if i%100 == 99 {
			eng.Run(eng.Now() + 10000)
		}
	}
}
