// Package satcom simulates the Tier 0 control plane (§4.1): two
// commercial satellite IoT messaging services providing reliable but
// slow, narrow out-of-band reachability to every balloon.
//
// The latency model is calibrated to the paper's published combined
// statistics: round-trip command latency of 23 s best case, 1m27s
// median, 5m47s at p90 and 14m50s at p99, with a throughput limit of
// roughly one 1 KiB message per minute per balloon.
//
// The gateway implements the paper's §4.2 message-queuing semantics:
// per-balloon rate limiting, queue-depth-blind ETA estimates, and
// dropping of messages that cannot arrive by their time-to-enact or
// that require in-band connectivity.
package satcom

import (
	"fmt"
	"math"

	"minkowski/internal/backoff"
	"minkowski/internal/sim"
)

// Message is one control-plane datagram.
type Message struct {
	// ID is assigned by the gateway.
	ID uint64
	// Dest is the destination node.
	Dest string
	// Size in bytes; the CDPI proxy bit-packs to stay near 1 KiB.
	Size int
	// TTE is the enactment deadline (absolute sim time; 0 = none).
	// The gateway drops messages that cannot arrive by their TTE.
	TTE float64
	// RequiresInBand marks messages the gateway must drop rather
	// than send over satcom (e.g. bulk forwarding-table updates).
	RequiresInBand bool
	// Payload is opaque to the satcom layer.
	Payload interface{}
	// Attempts counts gateway transmission tries (outage requeues).
	Attempts int
}

// Provider is one satellite messaging service.
type Provider struct {
	// Name labels the provider ("geo", "leo").
	Name string
	// MinOneWayS is the floor one-way latency.
	MinOneWayS float64
	// MedianExtraS is the median of the lognormal latency component
	// added to the floor.
	MedianExtraS float64
	// Sigma is the lognormal shape (tail heaviness).
	Sigma float64
	// PerNodeIntervalS is the minimum spacing between messages to
	// the same balloon (the ~1 msg/min/balloon limit).
	PerNodeIntervalS float64

	// nextFree[node] is when the provider can next transmit to a
	// node.
	nextFree map[string]float64
}

// DefaultProviders returns the two services: a LEO IoT network
// (lower floor, moderate tail) and a GEO network (higher floor,
// heavier tail). Their combination reproduces the paper's combined
// RTT distribution.
func DefaultProviders() []*Provider {
	return []*Provider{
		{
			Name: "leo", MinOneWayS: 10, MedianExtraS: 28, Sigma: 1.0,
			PerNodeIntervalS: 60, nextFree: map[string]float64{},
		},
		{
			Name: "geo", MinOneWayS: 15, MedianExtraS: 45, Sigma: 1.15,
			PerNodeIntervalS: 60, nextFree: map[string]float64{},
		},
	}
}

// drawOneWay samples a one-way delivery latency.
func (p *Provider) DrawOneWay(rng interface{ NormFloat64() float64 }) float64 {
	return p.MinOneWayS + p.MedianExtraS*math.Exp(p.Sigma*rng.NormFloat64())
}

// expectedOneWay is the provider's typical latency used for ETA
// estimates (the gateway does NOT know the queue depth downstream —
// one of the paper's explicit pain points).
func (p *Provider) expectedOneWay() float64 {
	return p.MinOneWayS + p.MedianExtraS
}

// Gateway is the satcom message relay service: the TS-SDN submits
// messages; the gateway picks the provider with the lowest expected
// delivery time, applies rate limits and TTE-based drops, and
// delivers.
type Gateway struct {
	eng       *sim.Engine
	providers []*Provider

	// Deliver is invoked when a message reaches its destination
	// node's satcom modem.
	Deliver func(m *Message)
	// OnDrop is invoked when the gateway discards a message (TTE
	// infeasible or requires in-band). The production system had no
	// such prompt notification — the TS-SDN relied on timeouts — so
	// the default frontend ignores it; the ablation benches wire it
	// up to measure what notification would have saved.
	OnDrop func(m *Message, why string)

	// Retry governs requeues while every provider is in outage
	// (capped exponential + seeded jitter; the unified fleet policy).
	Retry backoff.Policy

	// down marks providers in outage (chaos-injected or scheduled
	// maintenance); down providers accept no new transmissions but
	// in-flight messages still arrive.
	down map[string]bool

	nextID uint64
	// Counters.
	Sent, Dropped, Delivered, Requeued uint64
}

// NewGateway creates a gateway over the given providers.
func NewGateway(eng *sim.Engine, providers []*Provider) *Gateway {
	if len(providers) == 0 {
		panic("satcom: need at least one provider")
	}
	for _, p := range providers {
		if p.nextFree == nil {
			p.nextFree = map[string]float64{}
		}
	}
	return &Gateway{
		eng: eng, providers: providers,
		Retry: backoff.Policy{BaseS: 30, CapS: 600, Mult: 2, JitterFrac: 0.2, MaxAttempts: 8},
		down:  map[string]bool{},
	}
}

// SetProviderDown starts or ends a provider outage ("all" targets
// every provider — the both-services-dark scenario of §4.1).
func (g *Gateway) SetProviderDown(name string, isDown bool) {
	if name == "all" {
		for _, p := range g.providers {
			g.down[p.Name] = isDown
		}
		return
	}
	g.down[name] = isDown
}

// ProviderDown reports a provider's outage state.
func (g *Gateway) ProviderDown(name string) bool { return g.down[name] }

// Available reports whether at least one provider can transmit — the
// CDPI frontend falls back to in-band-only TTE selection when false.
func (g *Gateway) Available() bool {
	for _, p := range g.providers {
		if !g.down[p.Name] {
			return true
		}
	}
	return false
}

// Send submits a message. Returns the assigned message ID and whether
// the gateway accepted it (false = dropped immediately). During a
// full outage the message is queued and retried on the gateway's
// backoff policy until a provider returns or its TTE becomes
// infeasible.
func (g *Gateway) Send(m *Message) (uint64, bool) {
	g.nextID++
	m.ID = g.nextID
	if m.RequiresInBand {
		g.drop(m, "requires-in-band")
		return m.ID, false
	}
	return m.ID, g.transmit(m)
}

// transmit performs one transmission attempt (initial or requeued).
func (g *Gateway) transmit(m *Message) bool {
	m.Attempts++
	// Choose the available provider with the lowest expected delivery
	// time given per-node rate limiting.
	now := g.eng.Now()
	var best *Provider
	bestETA := math.Inf(1)
	for _, p := range g.providers {
		if g.down[p.Name] {
			continue
		}
		txAt := math.Max(now, p.nextFree[m.Dest])
		eta := txAt + p.expectedOneWay()
		if eta < bestETA {
			bestETA = eta
			best = p
		}
	}
	if best == nil {
		return g.requeue(m)
	}
	// TTE feasibility on the *estimate* (queue-blind: the actual
	// draw may still miss the TTE — that failure mode is real).
	if m.TTE > 0 && bestETA > m.TTE {
		g.drop(m, "tte-infeasible")
		return false
	}
	txAt := math.Max(now, best.nextFree[m.Dest])
	best.nextFree[m.Dest] = txAt + best.PerNodeIntervalS
	oneWay := best.DrawOneWay(g.eng.RNG("satcom-" + best.Name))
	g.Sent++
	g.eng.At(txAt+oneWay, func() {
		g.Delivered++
		if g.Deliver != nil {
			g.Deliver(m)
		}
	})
	return true
}

// requeue schedules a retry during a full outage, or drops the
// message once its TTE or the retry budget is unreachable.
func (g *Gateway) requeue(m *Message) bool {
	if g.Retry.Exhausted(m.Attempts) {
		g.drop(m, "no-provider")
		return false
	}
	delay := g.Retry.Delay(m.Attempts, g.eng.RNG("satcom-requeue"))
	if m.TTE > 0 && g.eng.Now()+delay > m.TTE {
		g.drop(m, "no-provider")
		return false
	}
	g.Requeued++
	g.eng.After(delay, func() { g.transmit(m) })
	return true
}

func (g *Gateway) drop(m *Message, why string) {
	g.Dropped++
	if g.OnDrop != nil {
		g.OnDrop(m, why)
	}
}

// String implements fmt.Stringer.
func (g *Gateway) String() string {
	return fmt.Sprintf("satcom-gateway(sent=%d dropped=%d delivered=%d)", g.Sent, g.Dropped, g.Delivered)
}
