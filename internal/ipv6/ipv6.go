// Package ipv6 implements the balloon host-stack behaviour of
// Appendix D: every node owns a global unicast /64; ground stations
// advertise their own dedicated /64s ("64share") over the MANET with
// Route Information Options pointing at their preferred EC pod; and
// balloons run the "one working RA at a time" policy — select the
// best ground-station gateway by batman-adv transmit quality, form an
// address from its Prefix Information Option, hold other RAs in
// reserve, and only renumber (destroying stale sockets, the
// SOCK_DESTROY analogue) when the selected gateway becomes
// unreachable.
//
// Because the SDN does not program an O(n²) mesh of GS↔EC tunnels,
// "EC reachability from a balloon was critically tied to source
// address and next hop GS selection" — using a source address from
// gateway A while forwarding through gateway B strands the return
// path. This package exists to keep those two choices consistent.
package ipv6

import (
	"fmt"
	"net/netip"
	"sort"
)

// NodePrefix derives the node's own global /64 from a site index —
// the "each node ... assigned its own global unicast IPv6 /64"
// allocation. Deterministic and collision-free for indexes < 65536.
func NodePrefix(index int) netip.Prefix {
	addr := netip.AddrFrom16([16]byte{
		0x20, 0x01, 0x0d, 0xb8, // 2001:db8::/32 documentation space
		0x10, 0x00, // site block
		byte(index >> 8), byte(index),
	})
	return netip.PrefixFrom(addr, 64)
}

// AddrFromPrefix forms a host address inside a /64 with the given
// interface identifier.
func AddrFromPrefix(p netip.Prefix, iid uint64) netip.Addr {
	b := p.Addr().As16()
	for i := 0; i < 8; i++ {
		b[15-i] = byte(iid >> (8 * i))
	}
	return netip.AddrFrom16(b)
}

// RA is a Router Advertisement as sent by a ground station over its
// batman-adv interface: a PIO carrying the GS's dedicated /64 and
// RIOs naming the EC prefixes reachable through it. GS RAs "did not
// advertise a default router lifetime, since they did not provide
// IPv6 Internet connectivity".
type RA struct {
	// Gateway is the advertising ground station's node ID.
	Gateway string
	// PIO is the prefix balloons may form addresses from.
	PIO netip.Prefix
	// RIOs are the EC prefixes reachable via this gateway.
	RIOs []netip.Prefix
	// IssuedAt is the advertisement time (sim seconds).
	IssuedAt float64
	// LifetimeS is how long the RA's information remains valid.
	LifetimeS float64
}

// Expired reports whether the RA is stale at time now.
func (ra RA) Expired(now float64) bool {
	return now-ra.IssuedAt > ra.LifetimeS
}

// Socket stands in for a control-plane connection (gRPC in
// production) bound to a source address.
type Socket struct {
	Label string
	Src   netip.Addr
	// Destroyed marks the SOCK_DESTROY treatment.
	Destroyed bool
}

// HostStack is one balloon's user-space RA processor.
type HostStack struct {
	// Node is the owning balloon.
	Node string
	// selected is the single RA currently applied.
	selected *RA
	// reserve holds the latest RA per gateway, unapplied.
	reserve map[string]*RA
	// addr is the configured address under the selected PIO.
	addr netip.Addr
	// iid is this host's interface identifier.
	iid uint64
	// sockets are live control-plane connections.
	sockets []*Socket
	// Renumbers counts gateway switches (telemetry: each one
	// destroys sockets and forces gRPC reconnects).
	Renumbers int
}

// NewHostStack creates the processor with the host's interface ID.
func NewHostStack(node string, iid uint64) *HostStack {
	return &HostStack{Node: node, iid: iid, reserve: map[string]*RA{}}
}

// Receive records an RA. It never switches gateways by itself —
// "once selected, as long as the gateway continued to be reachable,
// other RAs were examined and held in reserve", which dampens
// connectivity flapping.
func (h *HostStack) Receive(ra RA) {
	h.reserve[ra.Gateway] = &ra
	if h.selected != nil && h.selected.Gateway == ra.Gateway {
		// Refresh the applied RA in place.
		h.selected = &ra
	}
}

// Selected returns the applied RA, if any.
func (h *HostStack) Selected() (RA, bool) {
	if h.selected == nil {
		return RA{}, false
	}
	return *h.selected, true
}

// Addr returns the currently configured source address.
func (h *HostStack) Addr() (netip.Addr, bool) {
	if h.selected == nil {
		return netip.Addr{}, false
	}
	return h.addr, true
}

// Connect opens a control-plane socket bound to the current source
// address.
func (h *HostStack) Connect(label string) (*Socket, error) {
	if h.selected == nil {
		return nil, fmt.Errorf("ipv6: %s has no provisioned address", h.Node)
	}
	s := &Socket{Label: label, Src: h.addr}
	h.sockets = append(h.sockets, s)
	return s, nil
}

// LiveSockets returns non-destroyed sockets.
func (h *HostStack) LiveSockets() []*Socket {
	var out []*Socket
	for _, s := range h.sockets {
		if !s.Destroyed {
			out = append(out, s)
		}
	}
	return out
}

// Evaluate runs the selection policy at time now. reachable reports
// whether a gateway is currently reachable over the mesh; tq is the
// batman-adv transmit-quality metric used to sort gateways. Returns
// true when the host renumbered.
func (h *HostStack) Evaluate(now float64, reachable func(gw string) bool, tq func(gw string) float64) bool {
	// Expire stale reserve entries.
	for gw, ra := range h.reserve {
		if ra.Expired(now) {
			delete(h.reserve, gw)
		}
	}
	// Keep the working RA while its gateway is reachable.
	if h.selected != nil && !h.selected.Expired(now) && reachable(h.selected.Gateway) {
		return false
	}
	// Pick the best reserve gateway by TQ (deterministic tie-break
	// by name).
	gws := make([]string, 0, len(h.reserve))
	for gw := range h.reserve {
		gws = append(gws, gw)
	}
	sort.Strings(gws)
	var best string
	bestTQ := 0.0
	for _, gw := range gws {
		if !reachable(gw) {
			continue
		}
		if q := tq(gw); q > bestTQ {
			best, bestTQ = gw, q
		}
	}
	if best == "" {
		// Nothing reachable: drop the selection entirely.
		if h.selected != nil {
			h.apply(nil)
			return true
		}
		return false
	}
	if h.selected != nil && h.selected.Gateway == best {
		return false
	}
	ra := h.reserve[best]
	h.apply(ra)
	return true
}

// apply switches the working RA: renumber and SOCK_DESTROY all
// sockets using the old source address, "triggering control plane
// applications to reinitiate gRPC connections".
func (h *HostStack) apply(ra *RA) {
	for _, s := range h.sockets {
		if !s.Destroyed && s.Src == h.addr {
			s.Destroyed = true
		}
	}
	h.sockets = filterLive(h.sockets)
	h.selected = ra
	if ra == nil {
		h.addr = netip.Addr{}
		return
	}
	h.addr = AddrFromPrefix(ra.PIO, h.iid)
	h.Renumbers++
}

func filterLive(in []*Socket) []*Socket {
	out := in[:0]
	for _, s := range in {
		if !s.Destroyed {
			out = append(out, s)
		}
	}
	return out
}

// ReturnPathConsistent verifies the invariant the appendix warns
// about: traffic sourced from srcAddr and forwarded via nextHopGW has
// a working return path only if srcAddr is inside the PIO that
// gateway advertised.
func ReturnPathConsistent(srcAddr netip.Addr, nextHopGW string, ras map[string]RA) bool {
	ra, ok := ras[nextHopGW]
	if !ok {
		return false
	}
	return ra.PIO.Contains(srcAddr)
}
