package ipv6

import (
	"net/netip"
	"testing"
	"testing/quick"
)

func gsRA(gw string, idx int, at float64) RA {
	return RA{
		Gateway: gw, PIO: NodePrefix(1000 + idx),
		RIOs:     []netip.Prefix{NodePrefix(2000 + idx)},
		IssuedAt: at, LifetimeS: 60,
	}
}

func TestNodePrefixUnique(t *testing.T) {
	seen := map[netip.Prefix]bool{}
	for i := 0; i < 1000; i++ {
		p := NodePrefix(i)
		if p.Bits() != 64 {
			t.Fatalf("prefix length = %d", p.Bits())
		}
		if seen[p] {
			t.Fatalf("duplicate prefix for index %d", i)
		}
		seen[p] = true
	}
}

func TestAddrFromPrefix(t *testing.T) {
	p := NodePrefix(7)
	a := AddrFromPrefix(p, 0xdeadbeef)
	if !p.Contains(a) {
		t.Error("formed address must be inside the prefix")
	}
	b := AddrFromPrefix(p, 0xdeadbef0)
	if a == b {
		t.Error("different IIDs must give different addresses")
	}
	f := func(iid uint64) bool {
		return p.Contains(AddrFromPrefix(p, iid))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestSelectBestGatewayByTQ(t *testing.T) {
	h := NewHostStack("hbal-001", 0x99)
	h.Receive(gsRA("gs-a", 0, 0))
	h.Receive(gsRA("gs-b", 1, 0))
	all := func(string) bool { return true }
	tq := func(gw string) float64 {
		if gw == "gs-b" {
			return 0.9
		}
		return 0.5
	}
	if !h.Evaluate(1, all, tq) {
		t.Fatal("first evaluation must select a gateway")
	}
	sel, ok := h.Selected()
	if !ok || sel.Gateway != "gs-b" {
		t.Errorf("selected %v, want gs-b", sel.Gateway)
	}
	addr, _ := h.Addr()
	if !sel.PIO.Contains(addr) {
		t.Error("address must come from the selected PIO")
	}
}

func TestOneWorkingRADampsFlapping(t *testing.T) {
	h := NewHostStack("hbal-001", 0x99)
	h.Receive(gsRA("gs-a", 0, 0))
	all := func(string) bool { return true }
	tqA := func(gw string) float64 { return 0.5 }
	h.Evaluate(1, all, tqA)
	sel, _ := h.Selected()
	if sel.Gateway != "gs-a" {
		t.Fatal("precondition")
	}
	// A better gateway appears — but gs-a is still reachable, so the
	// host must NOT switch ("held in reserve but not used").
	h.Receive(gsRA("gs-b", 1, 2))
	tqB := func(gw string) float64 {
		if gw == "gs-b" {
			return 0.95
		}
		return 0.5
	}
	if h.Evaluate(3, all, tqB) {
		t.Error("host must not renumber while the working gateway is reachable")
	}
	sel, _ = h.Selected()
	if sel.Gateway != "gs-a" {
		t.Error("selection must stick")
	}
}

func TestRenumberDestroysSockets(t *testing.T) {
	h := NewHostStack("hbal-001", 0x99)
	h.Receive(gsRA("gs-a", 0, 0))
	h.Receive(gsRA("gs-b", 1, 0))
	all := func(string) bool { return true }
	tq := func(gw string) float64 {
		if gw == "gs-a" {
			return 0.9
		}
		return 0.5
	}
	h.Evaluate(1, all, tq)
	sock, err := h.Connect("grpc-sdn")
	if err != nil {
		t.Fatal(err)
	}
	oldAddr, _ := h.Addr()
	// gs-a dies; the host must fail over to gs-b, renumber, and
	// destroy the old socket.
	reach := func(gw string) bool { return gw == "gs-b" }
	h.Receive(gsRA("gs-a", 0, 2)) // fresh RA doesn't save an unreachable gw
	h.Receive(gsRA("gs-b", 1, 2))
	if !h.Evaluate(3, reach, tq) {
		t.Fatal("host must renumber when the working gateway dies")
	}
	if !sock.Destroyed {
		t.Error("old socket must be SOCK_DESTROYed")
	}
	if len(h.LiveSockets()) != 0 {
		t.Error("no live sockets should remain")
	}
	newAddr, _ := h.Addr()
	if newAddr == oldAddr {
		t.Error("renumbering must change the source address")
	}
	if h.Renumbers != 2 { // initial select + failover
		t.Errorf("renumbers = %d, want 2", h.Renumbers)
	}
}

func TestNoGatewayDropsSelection(t *testing.T) {
	h := NewHostStack("hbal-001", 0x99)
	h.Receive(gsRA("gs-a", 0, 0))
	all := func(string) bool { return true }
	one := func(string) float64 { return 0.5 }
	h.Evaluate(1, all, one)
	none := func(string) bool { return false }
	if !h.Evaluate(2, none, one) {
		t.Error("losing all gateways must clear the selection")
	}
	if _, ok := h.Selected(); ok {
		t.Error("selection should be empty")
	}
	if _, err := h.Connect("x"); err == nil {
		t.Error("connect without provisioning must fail")
	}
}

func TestExpiredRAsPurged(t *testing.T) {
	h := NewHostStack("hbal-001", 0x99)
	h.Receive(gsRA("gs-a", 0, 0)) // lifetime 60
	all := func(string) bool { return true }
	one := func(string) float64 { return 0.5 }
	h.Evaluate(100, all, one) // RA expired before first selection
	if _, ok := h.Selected(); ok {
		t.Error("expired RA must not be selected")
	}
}

func TestReceiveRefreshesSelected(t *testing.T) {
	h := NewHostStack("hbal-001", 0x99)
	h.Receive(gsRA("gs-a", 0, 0))
	all := func(string) bool { return true }
	one := func(string) float64 { return 0.5 }
	h.Evaluate(1, all, one)
	// Refresh at t=50; the selection must survive past the original
	// expiry (t=60) without renumbering.
	h.Receive(gsRA("gs-a", 0, 50))
	if h.Evaluate(90, all, one) {
		t.Error("refreshed RA must not cause a renumber")
	}
	if _, ok := h.Selected(); !ok {
		t.Error("selection must survive refresh")
	}
}

func TestReturnPathConsistent(t *testing.T) {
	raA := gsRA("gs-a", 0, 0)
	raB := gsRA("gs-b", 1, 0)
	ras := map[string]RA{"gs-a": raA, "gs-b": raB}
	srcFromA := AddrFromPrefix(raA.PIO, 0x1)
	if !ReturnPathConsistent(srcFromA, "gs-a", ras) {
		t.Error("source from gs-a's PIO via gs-a must be consistent")
	}
	if ReturnPathConsistent(srcFromA, "gs-b", ras) {
		t.Error("source from gs-a's PIO via gs-b strands the return path")
	}
	if ReturnPathConsistent(srcFromA, "gs-zz", ras) {
		t.Error("unknown gateway must be inconsistent")
	}
}
